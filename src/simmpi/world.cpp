#include "simmpi/world.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/check.h"
#include "util/csv.h"

namespace ctesim::mpi {

namespace {

// Collective tag layout: base + group context * kOpsPerContext + op.
constexpr int kCollTagBase = 1 << 20;
constexpr int kOpsPerContext = 16;
constexpr int kMaxContexts = 4096;

enum CollOp {
  kOpBarrier = 0,
  kOpBcast,
  kOpReduce,
  kOpAllreduce,
  kOpAllgather,
  kOpAlltoall,
  kOpGather,
  kOpScatter,
  kOpReduceScatter,
};

int coll_tag(const Group& group, CollOp op) {
  return kCollTagBase + group.context() * kOpsPerContext + op;
}

int highest_power_of_two_le(int n) {
  int p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

sim::Task<> run_rank(World::RankFn body, Rank* rank) {
  co_await body(*rank);
}

}  // namespace

Group::Group(std::vector<int> members, int context)
    : members_(std::move(members)), context_(context) {
  CTESIM_EXPECTS(!members_.empty());
  for (int v = 0; v < size(); ++v) {
    const bool inserted =
        index_.emplace(members_[static_cast<std::size_t>(v)], v).second;
    CTESIM_EXPECTS(inserted);  // members must be distinct
  }
}

World::World(WorldOptions options, Placement placement)
    : options_(std::move(options)),
      placement_(std::move(placement)),
      network_(options_.machine.interconnect,
               std::max(options_.machine.num_nodes, placement_.nodes_used())),
      exec_(options_.machine.node,
            options_.compiler.value_or(
                arch::default_app_compiler(options_.machine))) {
  CTESIM_EXPECTS(placement_.nodes_used() <= options_.machine.num_nodes);
  network_.set_jitter(options_.network_jitter);
  const int n = placement_.num_ranks();
  mailboxes_.resize(static_cast<std::size_t>(n));
  Rng root(options_.seed);
  jitter_.reserve(static_cast<std::size_t>(n));
  ranks_.reserve(static_cast<std::size_t>(n));
  std::vector<int> everyone(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    jitter_.push_back(root.split());
    ranks_.emplace_back(new Rank(*this, r));
    everyone[static_cast<std::size_t>(r)] = r;
  }
  world_group_.reset(new Group(std::move(everyone), /*context=*/0));
  if (options_.recorder) {
    recorder_ = options_.recorder;
  } else if (options_.trace) {
    owned_recorder_ = std::make_unique<trace::Recorder>(true);
    recorder_ = owned_recorder_.get();
  }
  if (recorder_) engine_.set_recorder(recorder_);
  if (options_.congestion) {
    congestion_.reset(new net::CongestionModel(network_));
    if (recorder_) congestion_->set_recorder(recorder_);
  }
  // All ranks of a node stream concurrently (SPMD); each one's bandwidth
  // is an equal share of what their combined cores can draw.
  const arch::NodeModel& node = options_.machine.node;
  const int rpn = placement_.ranks_per_node();
  const int active_cores =
      std::min(node.core_count(), rpn * placement_.slot(0).cores);
  rank_bw_share_ = node.best_bw(active_cores) / rpn;
}

World::~World() = default;

Group World::create_group(std::vector<int> members) {
  for (int m : members) {
    CTESIM_EXPECTS(m >= 0 && m < num_ranks());
  }
  CTESIM_EXPECTS(next_group_context_ < kMaxContexts);
  return Group(std::move(members), next_group_context_++);
}

sim::Channel<Message>& World::mailbox(int dst, int src, int tag) {
  CTESIM_EXPECTS(dst >= 0 && dst < num_ranks());
  CTESIM_EXPECTS(src >= 0 && src < num_ranks());
  CTESIM_EXPECTS(tag >= 0 && tag < (1 << 24));
  const std::uint64_t key =
      (static_cast<std::uint64_t>(src) << 24) | static_cast<std::uint64_t>(tag);
  auto& box = mailboxes_[static_cast<std::size_t>(dst)];
  auto it = box.find(key);
  if (it == box.end()) {
    it = box.emplace(key, std::make_unique<sim::Channel<Message>>(engine_))
             .first;
  }
  return *it->second;
}

void World::record(int rank, sim::Time start, sim::Time end, const char* kind,
                   const char* detail, std::uint64_t bytes, int peer) {
  if (!recorder_ || !recorder_->enabled()) return;
  recorder_->span(trace::Track::rank(rank), "mpi", kind, detail, start, end,
                  bytes, peer);
}

double World::run(const RankFn& body) {
  CTESIM_EXPECTS(!ran_);
  ran_ = true;
  for (auto& rank : ranks_) {
    engine_.spawn(run_rank(body, rank.get()));
  }
  engine_.run();
  if (engine_.unfinished_processes() != 0) {
    throw std::runtime_error(
        "ctesim::mpi::World: simulation deadlocked (" +
        std::to_string(engine_.unfinished_processes()) +
        " ranks blocked, e.g. a receive with no matching send)");
  }
  return sim::to_seconds(engine_.now());
}

void World::add_phase_time(int rank, const std::string& phase,
                           double seconds) {
  CTESIM_EXPECTS(rank >= 0 && rank < num_ranks());
  auto& times = phase_times_[phase];
  times.resize(static_cast<std::size_t>(num_ranks()), 0.0);
  times[static_cast<std::size_t>(rank)] += seconds;
}

double World::phase_max(const std::string& phase) const {
  auto it = phase_times_.find(phase);
  if (it == phase_times_.end()) return 0.0;
  return *std::max_element(it->second.begin(), it->second.end());
}

std::vector<double> World::phase_times(const std::string& phase) const {
  auto it = phase_times_.find(phase);
  if (it == phase_times_.end()) return {};
  return it->second;
}

double World::phase_avg(const std::string& phase) const {
  auto it = phase_times_.find(phase);
  if (it == phase_times_.end() || it->second.empty()) return 0.0;
  double sum = 0.0;
  for (double t : it->second) sum += t;
  return sum / static_cast<double>(it->second.size());
}

std::vector<std::string> World::phase_names() const {
  std::vector<std::string> names;
  names.reserve(phase_times_.size());
  for (const auto& [name, times] : phase_times_) names.push_back(name);
  return names;
}

void World::write_trace_csv(const std::string& path) const {
  CTESIM_EXPECTS(recorder_ != nullptr);
  CsvWriter csv(path, {"rank", "start_s", "end_s", "kind", "detail", "bytes",
                       "peer"});
  for (const auto& s : recorder_->spans()) {
    if (s.track.kind != trace::TrackKind::kRank) continue;
    csv.row(std::vector<std::string>{
        std::to_string(s.track.index),
        std::to_string(sim::to_seconds(s.start)),
        std::to_string(sim::to_seconds(s.end)), s.name, s.detail,
        std::to_string(s.bytes), std::to_string(s.peer)});
  }
}

// --------------------------------------------------------------- Rank ----

Rank::DepositResult Rank::deposit(int dst, std::uint64_t bytes, int tag) {
  CTESIM_EXPECTS(dst >= 0 && dst < size());
  const sim::Time now = world_->engine_.now();
  const int src_node = node();
  const int dst_node = world_->placement_.node_of(dst);
  sim::Time arrival;
  sim::Time sender_done;
  if (src_node == dst_node) {
    const arch::NodeModel& nm = world_->machine().node;
    CTESIM_EXPECTS(nm.shm_bw > 0.0);
    const double t =
        nm.shm_latency + static_cast<double>(bytes) / nm.shm_bw;
    arrival = now + sim::from_seconds(t);
    // The copy occupies the sender too (shared-memory transport).
    sender_done = arrival;
  } else {
    const auto transfer = world_->network_.transfer(src_node, dst_node, bytes,
                                                    sim::to_seconds(now));
    arrival = world_->congestion_
                  ? world_->congestion_->transfer_at(src_node, dst_node,
                                                     bytes, now)
                  : now + sim::from_seconds(transfer.time_s);
    if (transfer.rendezvous) {
      // Large message: sender stays coupled until delivery completes.
      sender_done = arrival;
    } else {
      // Eager: sender pays injection overhead + wire occupancy only.
      const auto& spec = world_->network_.spec();
      const double inject =
          0.5 * spec.base_latency_s +
          static_cast<double>(bytes) / (spec.link_bw * spec.eff_bw_factor);
      sender_done = now + sim::from_seconds(inject);
    }
  }
  world_->mailbox(dst, id_, tag).push(Message{bytes, arrival});
  world_->record(id_, now, sender_done, "send", "", bytes, dst);
  return {arrival, sender_done};
}

sim::Task<> Rank::send(int dst, std::uint64_t bytes, int tag) {
  const DepositResult d = deposit(dst, bytes, tag);
  const sim::Time now = world_->engine_.now();
  if (d.sender_done > now) {
    co_await world_->engine_.delay(d.sender_done - now);
  }
}

Request Rank::isend(int dst, std::uint64_t bytes, int tag) {
  const DepositResult d = deposit(dst, bytes, tag);
  return Request{d.sender_done};
}

sim::Task<> Rank::wait(Request request) {
  const sim::Time now = world_->engine_.now();
  if (request.complete_at > now) {
    co_await world_->engine_.delay(request.complete_at - now);
  }
}

sim::Task<> Rank::waitall(std::span<const Request> requests) {
  sim::Time latest = world_->engine_.now();
  for (const Request& r : requests) {
    latest = std::max(latest, r.complete_at);
  }
  const sim::Time now = world_->engine_.now();
  if (latest > now) {
    co_await world_->engine_.delay(latest - now);
  }
}

sim::Task<std::uint64_t> Rank::recv(int src, int tag) {
  CTESIM_EXPECTS(src >= 0 && src < size());
  const sim::Time t0 = world_->engine_.now();
  auto& channel = world_->mailbox(id_, src, tag);
  const Message msg = co_await channel.pop();
  const sim::Time now = world_->engine_.now();
  if (msg.arrival > now) {
    co_await world_->engine_.delay(msg.arrival - now);
  }
  world_->record(id_, t0, world_->engine_.now(), "recv", "", msg.bytes, src);
  co_return msg.bytes;
}

sim::Task<std::uint64_t> Rank::sendrecv(int dst, std::uint64_t send_bytes,
                                        int src, int tag) {
  // Full duplex: post the outgoing message, then block on the incoming one;
  // settle any residual sender-side occupancy afterwards.
  const DepositResult d = deposit(dst, send_bytes, tag);
  const std::uint64_t got = co_await recv(src, tag);
  const sim::Time now = world_->engine_.now();
  if (d.sender_done > now) {
    co_await world_->engine_.delay(d.sender_done - now);
  }
  co_return got;
}

sim::Task<> Rank::exchange(std::span<const int> neighbors,
                           std::uint64_t bytes_each, int tag) {
  sim::Time latest_send = world_->engine_.now();
  for (int nb : neighbors) {
    const DepositResult d = deposit(nb, bytes_each, tag);
    latest_send = std::max(latest_send, d.sender_done);
  }
  for (int nb : neighbors) {
    co_await recv(nb, tag);
  }
  const sim::Time now = world_->engine_.now();
  if (latest_send > now) {
    co_await world_->engine_.delay(latest_send - now);
  }
}

// ---------------------------------------------------------- collectives --

sim::Task<> Rank::barrier() { co_await barrier(world_->world_group()); }

sim::Task<> Rank::barrier(const Group& group) {
  const int p = group.size();
  const int me = group.vrank_of(id_);
  CTESIM_EXPECTS(me >= 0);
  const int tag = coll_tag(group, kOpBarrier);
  for (int k = 1; k < p; k <<= 1) {
    const int to = group.global((me + k) % p);
    const int from = group.global((me - k % p + p) % p);
    co_await sendrecv(to, 1, from, tag);
  }
}

sim::Task<> Rank::bcast(int root, std::uint64_t bytes) {
  co_await bcast(world_->world_group(), root, bytes);
}

sim::Task<> Rank::bcast(const Group& group, int root_vrank,
                        std::uint64_t bytes) {
  const int p = group.size();
  CTESIM_EXPECTS(root_vrank >= 0 && root_vrank < p);
  if (p == 1) co_return;
  const int me = group.vrank_of(id_);
  CTESIM_EXPECTS(me >= 0);
  const int tag = coll_tag(group, kOpBcast);
  const int relative = (me - root_vrank + p) % p;
  int mask = 1;
  while (mask < p) {
    if (relative & mask) {
      const int src = (relative - mask + root_vrank) % p;
      co_await recv(group.global(src), tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < p) {
      const int dst = (relative + mask + root_vrank) % p;
      co_await send(group.global(dst), bytes, tag);
    }
    mask >>= 1;
  }
}

sim::Task<> Rank::reduce(int root, std::uint64_t bytes) {
  co_await reduce(world_->world_group(), root, bytes);
}

sim::Task<> Rank::reduce(const Group& group, int root_vrank,
                         std::uint64_t bytes) {
  const int p = group.size();
  CTESIM_EXPECTS(root_vrank >= 0 && root_vrank < p);
  if (p == 1) co_return;
  const int me = group.vrank_of(id_);
  CTESIM_EXPECTS(me >= 0);
  const int tag = coll_tag(group, kOpReduce);
  const int relative = (me - root_vrank + p) % p;
  for (int mask = 1; mask < p; mask <<= 1) {
    if ((relative & mask) == 0) {
      const int src_rel = relative | mask;
      if (src_rel < p) {
        co_await recv(group.global((src_rel + root_vrank) % p), tag);
      }
    } else {
      co_await send(group.global((relative - mask + root_vrank) % p), bytes,
                    tag);
      break;
    }
  }
}

sim::Task<> Rank::allreduce(std::uint64_t bytes) {
  co_await allreduce(world_->world_group(), bytes);
}

sim::Task<> Rank::allreduce(const Group& group, std::uint64_t bytes) {
  const int p = group.size();
  if (p == 1) co_return;
  if (bytes > world_->options_.allreduce_ring_threshold && p > 2) {
    co_await ring_allreduce(group, bytes);
    co_return;
  }
  // Rabenseifner-style fold to a power of two, recursive doubling, unfold.
  const int me = group.vrank_of(id_);
  CTESIM_EXPECTS(me >= 0);
  const int tag = coll_tag(group, kOpAllreduce);
  const int p2 = highest_power_of_two_le(p);
  const int rem = p - p2;
  int newrank;
  if (me < 2 * rem) {
    if (me % 2 == 0) {
      co_await send(group.global(me + 1), bytes, tag);
      newrank = -1;  // folded away for the doubling phase
    } else {
      co_await recv(group.global(me - 1), tag);
      newrank = me / 2;
    }
  } else {
    newrank = me - rem;
  }
  if (newrank >= 0) {
    for (int mask = 1; mask < p2; mask <<= 1) {
      const int partner_new = newrank ^ mask;
      const int partner =
          partner_new < rem ? partner_new * 2 + 1 : partner_new + rem;
      const int peer = group.global(partner);
      co_await sendrecv(peer, bytes, peer, tag);
    }
  }
  if (me < 2 * rem) {
    if (me % 2 == 1) {
      co_await send(group.global(me - 1), bytes, tag);
    } else {
      co_await recv(group.global(me + 1), tag);
    }
  }
}

sim::Task<> Rank::ring_allreduce(const Group& group, std::uint64_t bytes) {
  // Bandwidth-optimal: reduce-scatter ring then allgather ring, 2(P-1)
  // steps of bytes/P each.
  const int p = group.size();
  const int me = group.vrank_of(id_);
  CTESIM_EXPECTS(me >= 0);
  const int tag = coll_tag(group, kOpAllreduce);
  const std::uint64_t chunk =
      std::max<std::uint64_t>(1, bytes / static_cast<std::uint64_t>(p));
  const int right = group.global((me + 1) % p);
  const int left = group.global((me - 1 + p) % p);
  for (int step = 0; step < 2 * (p - 1); ++step) {
    co_await sendrecv(right, chunk, left, tag);
  }
}

sim::Task<> Rank::allgather(std::uint64_t bytes_per_rank) {
  co_await allgather(world_->world_group(), bytes_per_rank);
}

sim::Task<> Rank::allgather(const Group& group,
                            std::uint64_t bytes_per_rank) {
  const int p = group.size();
  if (p == 1) co_return;
  const int me = group.vrank_of(id_);
  CTESIM_EXPECTS(me >= 0);
  const int tag = coll_tag(group, kOpAllgather);
  const int right = group.global((me + 1) % p);
  const int left = group.global((me - 1 + p) % p);
  for (int step = 0; step < p - 1; ++step) {
    co_await sendrecv(right, bytes_per_rank, left, tag);
  }
}

sim::Task<> Rank::alltoall(std::uint64_t bytes_per_pair) {
  co_await alltoall(world_->world_group(), bytes_per_pair);
}

sim::Task<> Rank::alltoall(const Group& group, std::uint64_t bytes_per_pair) {
  const int p = group.size();
  if (p == 1) co_return;
  const int me = group.vrank_of(id_);
  CTESIM_EXPECTS(me >= 0);
  const int tag = coll_tag(group, kOpAlltoall);
  for (int i = 1; i < p; ++i) {
    const int to = group.global((me + i) % p);
    const int from = group.global((me - i + p) % p);
    co_await sendrecv(to, bytes_per_pair, from, tag);
  }
}

sim::Task<> Rank::gather(int root, std::uint64_t bytes_per_rank) {
  co_await gather(world_->world_group(), root, bytes_per_rank);
}

sim::Task<> Rank::gather(const Group& group, int root_vrank,
                         std::uint64_t bytes_per_rank) {
  // Binomial tree toward the root; a node at distance `mask` forwards the
  // data of its whole subtree (mask * bytes_per_rank).
  const int p = group.size();
  CTESIM_EXPECTS(root_vrank >= 0 && root_vrank < p);
  if (p == 1) co_return;
  const int me = group.vrank_of(id_);
  CTESIM_EXPECTS(me >= 0);
  const int tag = coll_tag(group, kOpGather);
  const int relative = (me - root_vrank + p) % p;
  for (int mask = 1; mask < p; mask <<= 1) {
    if ((relative & mask) == 0) {
      const int src_rel = relative | mask;
      if (src_rel < p) {
        co_await recv(group.global((src_rel + root_vrank) % p), tag);
      }
    } else {
      const std::uint64_t subtree =
          static_cast<std::uint64_t>(std::min(mask, p - relative));
      co_await send(group.global((relative - mask + root_vrank) % p),
                    subtree * bytes_per_rank, tag);
      break;
    }
  }
}

sim::Task<> Rank::scatter(int root, std::uint64_t bytes_per_rank) {
  co_await scatter(world_->world_group(), root, bytes_per_rank);
}

sim::Task<> Rank::scatter(const Group& group, int root_vrank,
                          std::uint64_t bytes_per_rank) {
  // Reverse binomial tree: each internal node receives its subtree's data
  // and forwards halves outward.
  const int p = group.size();
  CTESIM_EXPECTS(root_vrank >= 0 && root_vrank < p);
  if (p == 1) co_return;
  const int me = group.vrank_of(id_);
  CTESIM_EXPECTS(me >= 0);
  const int tag = coll_tag(group, kOpScatter);
  const int relative = (me - root_vrank + p) % p;
  int mask = 1;
  while (mask < p) {
    if (relative & mask) {
      co_await recv(group.global((relative - mask + root_vrank) % p), tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < p) {
      const std::uint64_t subtree =
          static_cast<std::uint64_t>(std::min(mask, p - relative - mask));
      co_await send(group.global((relative + mask + root_vrank) % p),
                    subtree * bytes_per_rank, tag);
    }
    mask >>= 1;
  }
}

sim::Task<> Rank::reduce_scatter(std::uint64_t total_bytes) {
  co_await reduce_scatter(world_->world_group(), total_bytes);
}

sim::Task<> Rank::reduce_scatter(const Group& group,
                                 std::uint64_t total_bytes) {
  // Pairwise halving: log2(P) rounds, each exchanging half the remaining
  // buffer (power-of-two groups take the optimal path; others fall back to
  // a ring of chunks).
  const int p = group.size();
  if (p == 1) co_return;
  const int me = group.vrank_of(id_);
  CTESIM_EXPECTS(me >= 0);
  const int tag = coll_tag(group, kOpReduceScatter);
  if ((p & (p - 1)) == 0) {
    std::uint64_t bytes = total_bytes / 2;
    for (int mask = p >> 1; mask > 0; mask >>= 1) {
      const int peer = group.global(me ^ mask);
      co_await sendrecv(peer, std::max<std::uint64_t>(1, bytes), peer, tag);
      bytes /= 2;
    }
  } else {
    const std::uint64_t chunk = std::max<std::uint64_t>(
        1, total_bytes / static_cast<std::uint64_t>(p));
    const int right = group.global((me + 1) % p);
    const int left = group.global((me - 1 + p) % p);
    for (int step = 0; step < p - 1; ++step) {
      co_await sendrecv(right, chunk, left, tag);
    }
  }
}

// -------------------------------------------------------------- compute --

sim::Task<> Rank::compute(const roofline::KernelSig& sig, double elems) {
  double seconds =
      world_->exec_
          .analyze_shared(sig, elems, slot().cores, world_->rank_bw_share_)
          .total_s;
  if (world_->options_.compute_jitter > 0.0) {
    auto& rng = world_->jitter_[static_cast<std::size_t>(id_)];
    seconds *= 1.0 + world_->options_.compute_jitter * std::fabs(rng.normal());
  }
  const sim::Time t0 = world_->engine_.now();
  co_await world_->engine_.delay(sim::from_seconds(seconds));
  world_->record(id_, t0, world_->engine_.now(), "compute", sig.name, 0, -1);
}

sim::Task<> Rank::compute_seconds(double seconds) {
  CTESIM_EXPECTS(seconds >= 0.0);
  const sim::Time t0 = world_->engine_.now();
  co_await world_->engine_.delay(sim::from_seconds(seconds));
  world_->record(id_, t0, world_->engine_.now(), "compute", "fixed", 0, -1);
}

}  // namespace ctesim::mpi
