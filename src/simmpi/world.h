// Simulated MPI world: ranks as coroutine actors over the DES engine, with
// point-to-point messaging timed by the network/node models and collective
// operations implemented as the standard algorithms (binomial tree,
// recursive doubling, ring, pairwise exchange) on top of point-to-point.
//
// A World is one-shot: construct, run(), read results. The simulation is
// deterministic for a fixed (options, placement, body).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/configs.h"
#include "arch/machine.h"
#include "core/channel.h"
#include "core/engine.h"
#include "net/congestion.h"
#include "net/network.h"
#include "roofline/exec_model.h"
#include "simmpi/placement.h"
#include "trace/recorder.h"
#include "util/rng.h"

namespace ctesim::mpi {

/// An in-flight message (payload is sizes only; ctesim models time, the
/// numerics live in src/kernels).
struct Message {
  std::uint64_t bytes = 0;
  sim::Time arrival = 0;  ///< absolute simulated arrival time
};

/// An ordered subset of world ranks — the communicator equivalent.
/// Collectives on different groups are isolated by a per-group context in
/// the tag space. Create via World::create_group.
class Group {
 public:
  int size() const { return static_cast<int>(members_.size()); }
  /// Global rank of the group's `vrank`-th member.
  int global(int vrank) const {
    CTESIM_EXPECTS(vrank >= 0 && vrank < size());
    return members_[static_cast<std::size_t>(vrank)];
  }
  /// Position of a global rank in the group, -1 if absent.
  int vrank_of(int global_rank) const {
    auto it = index_.find(global_rank);
    return it == index_.end() ? -1 : it->second;
  }
  bool contains(int global_rank) const { return vrank_of(global_rank) >= 0; }
  int context() const { return context_; }

 private:
  friend class World;
  Group(std::vector<int> members, int context);

  std::vector<int> members_;
  // Lookup-only reverse index (never iterated): hash order cannot reach
  // simulation results. Ordered iteration happens over members_.
  std::unordered_map<int, int> index_;
  int context_;
};

/// Handle for a nonblocking send (see Rank::isend / Rank::wait).
struct Request {
  sim::Time complete_at = 0;
};

struct WorldOptions {
  arch::MachineModel machine;
  /// Compiler used for the workload; defaults to the paper's choice for the
  /// machine (GNU on CTE-Arm, Intel on MareNostrum 4).
  std::optional<arch::CompilerModel> compiler;
  /// Relative magnitude of per-call compute-time noise (system jitter,
  /// imbalance). 0 disables. Noise only ever slows a rank down.
  double compute_jitter = 0.0;
  /// Deterministic seed for the jitter streams.
  std::uint64_t seed = 42;
  /// Per-pair network bandwidth jitter amplitude (see net::Network).
  double network_jitter = 0.03;
  /// Record a per-rank execution timeline into a World-owned
  /// trace::Recorder (see World::recorder(), write_trace_csv).
  bool trace = false;
  /// Record into this externally owned recorder instead — lets one trace
  /// span the whole simulation (batch queue + per-rank MPI + network).
  /// Implies tracing regardless of `trace`. Must outlive the World.
  trace::Recorder* recorder = nullptr;
  /// Model shared-link contention on the interconnect (see
  /// net::CongestionModel). Off by default: the figure harnesses are
  /// calibrated contention-free; turn on for congestion studies.
  bool congestion = false;
  /// Payload size above which allreduce switches from recursive doubling
  /// to the bandwidth-optimal ring (reduce-scatter + allgather).
  std::uint64_t allreduce_ring_threshold = 256 * 1024;
};

class Rank;

class World {
 public:
  World(WorldOptions options, Placement placement);
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  using RankFn = std::function<sim::Task<>(Rank&)>;

  /// Run `body` on every rank to completion. Returns the makespan in
  /// simulated seconds. Throws if the workload deadlocks (unmatched
  /// receives) or a rank throws.
  double run(const RankFn& body);

  int num_ranks() const { return placement_.num_ranks(); }
  const Placement& placement() const { return placement_; }
  const arch::MachineModel& machine() const { return options_.machine; }
  net::Network& network() { return network_; }
  sim::Engine& engine() { return engine_; }
  const roofline::ExecModel& exec() const { return exec_; }

  /// The group containing every rank, in rank order.
  const Group& world_group() const { return *world_group_; }

  /// A new group over `members` (global ranks, all distinct, in the given
  /// order) with its own collective context.
  Group create_group(std::vector<int> members);

  // --- per-phase timing, aggregated across ranks -------------------------
  void add_phase_time(int rank, const std::string& phase, double seconds);
  /// Slowest rank's accumulated time for a phase ("elapsed time of the
  /// slowest process", as the paper reports Alya phases). 0 if unknown.
  double phase_max(const std::string& phase) const;
  /// Mean across ranks that reported the phase. 0 if unknown.
  double phase_avg(const std::string& phase) const;
  /// Per-rank accumulated times for a phase, indexed by rank (0 for ranks
  /// that never reported it). Empty if the phase is unknown. Used by the
  /// sampling executor, which extrapolates each rank separately before
  /// taking the slowest — the unbiased estimator of phase_max().
  std::vector<double> phase_times(const std::string& phase) const;
  std::vector<std::string> phase_names() const;

  /// Time spent queueing behind busy links so far (0 unless
  /// WorldOptions::congestion is on).
  double network_queueing_seconds() const {
    return congestion_ ? congestion_->total_queueing_seconds() : 0.0;
  }

  // --- tracing ------------------------------------------------------------
  /// The recorder events go to: the external one from WorldOptions, the
  /// World-owned one when WorldOptions::trace is set, else nullptr.
  /// Per-rank compute/send/recv spans land on trace::Track::rank(r) with
  /// category "mpi"; render with report::Gantt or trace::write_chrome_trace.
  const trace::Recorder* recorder() const { return recorder_; }
  /// Write the recorded per-rank timeline as CSV (rank,start,end,kind,
  /// detail,bytes,peer). Requires tracing to be on.
  void write_trace_csv(const std::string& path) const;

 private:
  friend class Rank;

  sim::Channel<Message>& mailbox(int dst, int src, int tag);
  void record(int rank, sim::Time start, sim::Time end, const char* kind,
              const char* detail, std::uint64_t bytes, int peer);

  WorldOptions options_;
  Placement placement_;
  net::Network network_;
  roofline::ExecModel exec_;
  sim::Engine engine_;
  std::vector<std::unique_ptr<Rank>> ranks_;
  // One mailbox map per destination rank, keyed by (src, tag). Lookup-only
  // (never iterated), so hash order cannot perturb message delivery.
  std::vector<std::unordered_map<std::uint64_t,
                                 std::unique_ptr<sim::Channel<Message>>>>
      mailboxes_;
  std::vector<Rng> jitter_;
  std::map<std::string, std::vector<double>> phase_times_;
  std::unique_ptr<Group> world_group_;
  std::unique_ptr<net::CongestionModel> congestion_;
  int next_group_context_ = 1;
  std::unique_ptr<trace::Recorder> owned_recorder_;
  trace::Recorder* recorder_ = nullptr;
  /// Fair raw-bandwidth share of one rank when all node ranks run (SPMD).
  units::BytesPerSec rank_bw_share_{0.0};
  bool ran_ = false;
};

/// Handle a rank's coroutine uses to interact with the simulated machine.
/// All communication/compute methods are awaitable tasks.
class Rank {
 public:
  int id() const { return id_; }
  int size() const { return world_->num_ranks(); }
  const RankSlot& slot() const { return world_->placement_.slot(id_); }
  int node() const { return slot().node; }
  World& world() { return *world_; }

  /// Current simulated time, seconds.
  double now_s() const { return sim::to_seconds(world_->engine_.now()); }

  /// Largest tag usable in point-to-point calls; higher values are
  /// reserved for the collective algorithms' internal messages.
  static constexpr int kMaxUserTag = (1 << 20) - 1;

  // --- point-to-point (tags must be in [0, kMaxUserTag]) ------------------
  sim::Task<> send(int dst, std::uint64_t bytes, int tag = 0);
  sim::Task<std::uint64_t> recv(int src, int tag = 0);
  /// Full-duplex exchange (MPI_Sendrecv): returns received byte count.
  sim::Task<std::uint64_t> sendrecv(int dst, std::uint64_t send_bytes,
                                    int src, int tag = 0);
  /// Nonblocking send: the message is injected immediately; wait() (or any
  /// later await) settles the residual sender-side occupancy.
  Request isend(int dst, std::uint64_t bytes, int tag = 0);
  sim::Task<> wait(Request request);
  sim::Task<> waitall(std::span<const Request> requests);
  /// Post sends to all neighbors, then receive one message from each —
  /// the halo-exchange pattern every domain-decomposed app uses. The span
  /// must reference storage that outlives the await (a named container).
  sim::Task<> exchange(std::span<const int> neighbors,
                       std::uint64_t bytes_each, int tag = 0);

  // --- collectives (algorithms over point-to-point) ----------------------
  // Each has a whole-world form and a Group form. Group arguments must
  // outlive the await (named lvalues, per the core/task.h GCC constraint).
  sim::Task<> barrier();                       ///< dissemination
  sim::Task<> barrier(const Group& group);
  sim::Task<> bcast(int root, std::uint64_t bytes);      ///< binomial tree
  sim::Task<> bcast(const Group& group, int root_vrank, std::uint64_t bytes);
  sim::Task<> reduce(int root, std::uint64_t bytes);     ///< binomial tree
  sim::Task<> reduce(const Group& group, int root_vrank, std::uint64_t bytes);
  /// Recursive doubling below WorldOptions::allreduce_ring_threshold,
  /// bandwidth-optimal ring (reduce-scatter + allgather) above it.
  sim::Task<> allreduce(std::uint64_t bytes);
  sim::Task<> allreduce(const Group& group, std::uint64_t bytes);
  sim::Task<> allgather(std::uint64_t bytes_per_rank);   ///< ring
  sim::Task<> allgather(const Group& group, std::uint64_t bytes_per_rank);
  sim::Task<> alltoall(std::uint64_t bytes_per_pair);    ///< pairwise
  sim::Task<> alltoall(const Group& group, std::uint64_t bytes_per_pair);
  sim::Task<> gather(int root, std::uint64_t bytes_per_rank);  ///< binomial
  sim::Task<> gather(const Group& group, int root_vrank,
                     std::uint64_t bytes_per_rank);
  sim::Task<> scatter(int root, std::uint64_t bytes_per_rank);  ///< binomial
  sim::Task<> scatter(const Group& group, int root_vrank,
                      std::uint64_t bytes_per_rank);
  /// Pairwise-halving reduce-scatter of a `total_bytes` buffer.
  sim::Task<> reduce_scatter(std::uint64_t total_bytes);
  sim::Task<> reduce_scatter(const Group& group, std::uint64_t total_bytes);

  // --- compute -----------------------------------------------------------
  /// Run `elems` elements of `sig` on this rank's cores.
  sim::Task<> compute(const roofline::KernelSig& sig, double elems);
  /// Occupy this rank for a fixed time (I/O waits, serial sections).
  sim::Task<> compute_seconds(double seconds);

  /// Accumulate `seconds` into a named phase for reporting.
  void phase_add(const std::string& phase, double seconds) {
    world_->add_phase_time(id_, phase, seconds);
  }

 private:
  friend class World;
  Rank(World& world, int id) : world_(&world), id_(id) {}

  /// Compute transfer times and enqueue the message at the destination.
  /// Returns {arrival time, sender-completion time}.
  struct DepositResult {
    sim::Time arrival;
    sim::Time sender_done;
  };
  DepositResult deposit(int dst, std::uint64_t bytes, int tag);

  // Group-based collective engines (tags derived from the group context).
  sim::Task<> ring_allreduce(const Group& group, std::uint64_t bytes);

  World* world_;
  int id_;
};

}  // namespace ctesim::mpi
