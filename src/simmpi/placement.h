// Rank placement: which node, NUMA domain and how many cores/threads each
// simulated MPI rank owns. Mirrors the layouts used in the paper:
//   - fill_nodes: MPI-only, one rank per core (applications, HPCG)
//   - one rank per CMG/socket (hybrid STREAM, LINPACK on CTE-Arm)
//   - hybrid: R ranks per node × T threads (Gromacs 8×6)
//   - per_node: one aggregated rank per node (fast large-scale sweeps; the
//     communication structure across nodes is unchanged)
#pragma once

#include <vector>

#include "arch/node.h"
#include "util/check.h"

namespace ctesim::mpi {

struct RankSlot {
  int node = 0;     ///< node index in the machine
  int domain = 0;   ///< NUMA domain within the node (-1 = spans domains)
  int cores = 1;    ///< cores this rank's threads occupy
};

class Placement {
 public:
  /// `ranks_per_node` ranks on each node, each with cores/ranks_per_node
  /// cores, packed domain by domain. nranks must fill nodes completely
  /// except possibly the last.
  static Placement fill_nodes(const arch::NodeModel& node, int nranks,
                              int ranks_per_node);

  /// One rank per core (MPI-only full population).
  static Placement per_core(const arch::NodeModel& node, int nranks);

  /// One rank per NUMA domain.
  static Placement per_domain(const arch::NodeModel& node, int nnodes);

  /// One rank per node owning all cores (aggregated-node granularity).
  static Placement per_node(const arch::NodeModel& node, int nnodes);

  /// `ranks_per_node` ranks × `threads_per_rank` threads each.
  static Placement hybrid(const arch::NodeModel& node, int nranks,
                          int ranks_per_node, int threads_per_rank);

  /// One whole-node rank on each of the given (not necessarily
  /// contiguous) nodes — topology-aware placement for network studies.
  static Placement one_per_node_at(const arch::NodeModel& node,
                                   const std::vector<int>& nodes);

  int num_ranks() const { return static_cast<int>(slots_.size()); }
  const RankSlot& slot(int rank) const {
    CTESIM_EXPECTS(rank >= 0 && rank < num_ranks());
    return slots_[rank];
  }
  int node_of(int rank) const { return slot(rank).node; }
  int nodes_used() const { return nodes_used_; }
  int ranks_per_node() const { return ranks_per_node_; }

 private:
  Placement(std::vector<RankSlot> slots, int ranks_per_node);

  std::vector<RankSlot> slots_;
  int nodes_used_ = 0;
  int ranks_per_node_ = 1;
};

}  // namespace ctesim::mpi
