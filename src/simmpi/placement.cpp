#include "simmpi/placement.h"

#include <algorithm>

namespace ctesim::mpi {

Placement::Placement(std::vector<RankSlot> slots, int ranks_per_node)
    : slots_(std::move(slots)), ranks_per_node_(ranks_per_node) {
  CTESIM_EXPECTS(!slots_.empty());
  int max_node = 0;
  for (const auto& s : slots_) max_node = std::max(max_node, s.node);
  nodes_used_ = max_node + 1;
}

Placement Placement::fill_nodes(const arch::NodeModel& node, int nranks,
                                int ranks_per_node) {
  CTESIM_EXPECTS(nranks >= 1);
  CTESIM_EXPECTS(ranks_per_node >= 1 &&
                 ranks_per_node <= node.core_count());
  const int cores_per_rank = std::max(1, node.core_count() / ranks_per_node);
  std::vector<RankSlot> slots(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    const int local = r % ranks_per_node;
    const int first_core = local * cores_per_rank;
    slots[static_cast<std::size_t>(r)] = RankSlot{
        .node = r / ranks_per_node,
        .domain = (first_core / node.domain.cores) % node.num_domains,
        .cores = cores_per_rank,
    };
  }
  return Placement(std::move(slots), ranks_per_node);
}

Placement Placement::per_core(const arch::NodeModel& node, int nranks) {
  return fill_nodes(node, nranks, node.core_count());
}

Placement Placement::per_domain(const arch::NodeModel& node, int nnodes) {
  CTESIM_EXPECTS(nnodes >= 1);
  return fill_nodes(node, nnodes * node.num_domains, node.num_domains);
}

Placement Placement::per_node(const arch::NodeModel& node, int nnodes) {
  CTESIM_EXPECTS(nnodes >= 1);
  return fill_nodes(node, nnodes, 1);
}

Placement Placement::one_per_node_at(const arch::NodeModel& node,
                                     const std::vector<int>& nodes) {
  CTESIM_EXPECTS(!nodes.empty());
  std::vector<RankSlot> slots;
  slots.reserve(nodes.size());
  for (int n : nodes) {
    CTESIM_EXPECTS(n >= 0);
    slots.push_back(RankSlot{.node = n, .domain = -1,
                             .cores = node.core_count()});
  }
  return Placement(std::move(slots), /*ranks_per_node=*/1);
}

Placement Placement::hybrid(const arch::NodeModel& node, int nranks,
                            int ranks_per_node, int threads_per_rank) {
  CTESIM_EXPECTS(ranks_per_node * threads_per_rank <= node.core_count());
  std::vector<RankSlot> slots(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    const int local = r % ranks_per_node;
    const int first_core = local * threads_per_rank;
    slots[static_cast<std::size_t>(r)] = RankSlot{
        .node = r / ranks_per_node,
        .domain = (first_core / node.domain.cores) % node.num_domains,
        .cores = threads_per_rank,
    };
  }
  return Placement(std::move(slots), ranks_per_node);
}

}  // namespace ctesim::mpi
