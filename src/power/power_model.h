// Power model layer (ROADMAP item 4): turns every simulation into a
// performance *and* energy study, the co-equal outputs the ThunderX2
// sibling paper reports for production Arm HPC clusters.
//
// The model is deliberately first-order and fully deterministic:
//
//   node active draw  = cores * core_active * pscale(dvfs)
//                       + domains * cmg_uncore + node_base
//   node idle draw    = cores * core_idle + domains * cmg_uncore + node_base
//   memory power      = traffic rate * dram_energy_per_byte  (so memory
//                       *energy* is traffic-proportional: bytes * J/B)
//   network power     = busy links * link_active  (a link draws only while
//                       it carries traffic — the congestion model's busy
//                       time, or a job's communication share in batch runs)
//
// DVFS: a small set of discrete (frequency, voltage) operating points.
// Dropping a state scales arch::CoreModel::freq_ghz — and therefore the
// roofline compute rate — by freq_scale, while active core power scales as
// f * V^2 (dynamic CMOS power). Memory bandwidth is unaffected by core
// DVFS, so memory-bound work barely slows while its core energy falls:
// the classic reason low frequency wins on memory-bound mixes and loses
// (race-to-idle) on compute-bound ones.
//
// All quantities are strong-typed (units::Watts / units::Joules), so
// dimension mix-ups are compile errors; raw doubles appear only at I/O
// boundaries (CSV, JSON, tables).
#pragma once

#include <vector>

#include "arch/machine.h"
#include "util/units.h"

namespace ctesim::power {

/// One DVFS operating point. freq_scale multiplies the nominal core clock
/// (and, through the roofline model, the compute rate); volt_scale
/// multiplies the supply voltage, so active core power scales by
/// freq_scale * volt_scale^2.
struct DvfsState {
  const char* name = "nominal";
  double freq_scale = 1.0;
  double volt_scale = 1.0;

  /// Active-power multiplier relative to nominal: f * V^2.
  double power_scale() const {
    return freq_scale * volt_scale * volt_scale;
  }
  /// The no-op state: full frequency, full voltage.
  bool nominal() const { return freq_scale >= 1.0; }
};

/// The ladder of supported operating points, nominal first, strictly
/// decreasing frequency. Index 0 is always a no-op.
const std::vector<DvfsState>& dvfs_states();

/// State by ladder index; throws std::out_of_range past the ladder.
const DvfsState& dvfs_state(int index);

struct PowerModel {
  units::Watts core_active{0.0};  ///< per busy core at nominal (f, V)
  units::Watts core_idle{0.0};    ///< per clock-gated idle core
  units::Watts cmg_uncore{0.0};   ///< per NUMA domain: L2, ring stop, PHYs
  units::Watts node_base{0.0};    ///< per node: board, NIC, fans, VRM loss
  /// DRAM/HBM access energy; memory energy = traffic bytes * this.
  units::Joules dram_energy_per_byte{0.0};
  units::Watts link_active{0.0};  ///< per network link while driving traffic
  /// Links a communicating node keeps busy on average (torus injection
  /// ports in use) — scales the network power of a job's comm share.
  double links_per_node = 0.0;

  /// Whole-node draw with every core busy at `state`.
  units::Watts node_active(const arch::NodeModel& node,
                           const DvfsState& state) const;
  /// Whole-node draw when idle but powered (in service, unallocated).
  units::Watts node_idle(const arch::NodeModel& node) const;

  /// True when every coefficient is zero — the energy layer contributes
  /// nothing and metrics reproduce the pre-power numbers exactly.
  bool zero() const;
};

/// Calibrated defaults for a machine's microarchitecture family (A64FX /
/// HBM2 vs Skylake / DDR4); generic nodes get conservative placeholders.
PowerModel default_power(const arch::MachineModel& machine);

/// Validate coefficients (all finite and non-negative); throws
/// std::invalid_argument naming the offending field.
void validate_or_throw(const PowerModel& model);

/// The machine as the DVFS state sees it: core.freq_ghz scaled by
/// freq_scale, everything else untouched. Roofline peaks and compute times
/// derived from the returned model scale coherently with the clock.
arch::MachineModel apply_dvfs(const arch::MachineModel& machine,
                              const DvfsState& state);

}  // namespace ctesim::power
