// Energy attribution: from the roofline cost breakdown of a kernel, or a
// batch job's profile, to Joules — the same component split in both.
//
// Kernel level (attribute_kernel): cores draw active power while the
// kernel is compute-busy and idle power while it stalls on memory; memory
// energy is traffic-proportional (bytes * J/B); the uncore and node base
// draw for the whole duration. Components sum to total_j by construction.
//
// Job level (job_draw): a batch job occupies whole nodes, and an MPI rank
// busy-waits through communication, so every core draws active power for
// the full attempt. Memory power is the job's traffic spread over its
// modeled runtime (so memory *energy* stays traffic-proportional no matter
// how DVFS or placement stretch the attempt), and network power is the
// communication share of the runtime times the links the node keeps busy —
// the batch-level stand-in for the congestion model's per-link busy time,
// which link_energy() prices directly for simulated-MPI studies.
#pragma once

#include "arch/node.h"
#include "power/power_model.h"
#include "roofline/exec_model.h"

namespace ctesim::power {

/// Energy of one kernel invocation on `cores` cores of one node.
struct KernelEnergy {
  units::Joules core_j{0.0};    ///< core active + stall energy
  units::Joules memory_j{0.0};  ///< DRAM/HBM traffic energy
  units::Joules static_j{0.0};  ///< uncore + node base over the duration
  units::Joules total_j{0.0};   ///< sum of the three components
  /// Energy-delay product in J*s — the figure of merit the DVFS sweep
  /// optimizes (dimensionless ratios of it compare states).
  double edp_js = 0.0;
};

/// Attribute energy to a roofline breakdown (which carries its own flops /
/// bytes / component times).
KernelEnergy attribute_kernel(const roofline::Breakdown& b, int cores,
                              const arch::NodeModel& node,
                              const PowerModel& model,
                              const DvfsState& state);

/// Constant per-node power draw of a running batch job, split by component.
/// Watts per *node*; multiply by the allocation size and the elapsed time
/// for energy.
struct JobDraw {
  units::Watts cpu_w{0.0};  ///< cores (at the DVFS point) + uncore + base
  units::Watts mem_w{0.0};  ///< traffic-proportional DRAM/HBM draw
  units::Watts net_w{0.0};  ///< comm-share-weighted link draw
  units::Watts total() const { return cpu_w + mem_w + net_w; }
};

/// Draw of a job whose per-node traffic is `bytes_per_node` spread over
/// `runtime_s` of modeled runtime with communication share
/// `comm_fraction`. runtime_s <= 0 (a zero-work job) yields no memory or
/// network draw.
JobDraw job_draw(const arch::NodeModel& node, const PowerModel& model,
                 const DvfsState& state, double bytes_per_node,
                 double runtime_s, double comm_fraction);

/// Energy of `busy_link_seconds` of cumulative per-link busy time (the
/// congestion model's accounting) under this power model.
units::Joules link_energy(const PowerModel& model, double busy_link_seconds);

}  // namespace ctesim::power
