#include "power/power_model.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "util/check.h"

namespace ctesim::power {

const std::vector<DvfsState>& dvfs_states() {
  // The A64FX exposes a short frequency ladder (2.2/2.0/1.6 GHz class
  // machines); voltage tracks frequency sub-linearly, as on real parts.
  static const std::vector<DvfsState> kStates = {
      {"nominal", 1.0, 1.0},
      {"f0.9", 0.9, 0.95},
      {"f0.8", 0.8, 0.90},
      {"f0.6", 0.6, 0.80},
  };
  return kStates;
}

const DvfsState& dvfs_state(int index) {
  const auto& states = dvfs_states();
  if (index < 0 || index >= static_cast<int>(states.size())) {
    throw std::out_of_range("power: dvfs state index " +
                            std::to_string(index) + " outside the ladder [0, " +
                            std::to_string(states.size()) + ")");
  }
  return states[static_cast<std::size_t>(index)];
}

units::Watts PowerModel::node_active(const arch::NodeModel& node,
                                     const DvfsState& state) const {
  return node.core_count() * core_active * state.power_scale() +
         node.num_domains * cmg_uncore + node_base;
}

units::Watts PowerModel::node_idle(const arch::NodeModel& node) const {
  return node.core_count() * core_idle + node.num_domains * cmg_uncore +
         node_base;
}

bool PowerModel::zero() const {
  // Coefficients are validated non-negative, so zero means "not positive".
  return core_active.value() <= 0.0 && core_idle.value() <= 0.0 &&
         cmg_uncore.value() <= 0.0 && node_base.value() <= 0.0 &&
         dram_energy_per_byte.value() <= 0.0 && link_active.value() <= 0.0;
}

PowerModel default_power(const arch::MachineModel& machine) {
  PowerModel pm;
  switch (machine.node.core.uarch) {
    case arch::MicroArch::kA64fx:
      // A64FX: ~120 W typical chip draw at load for 48 cores + 4 CMGs of
      // HBM2 PHY/uncore, plus TofuD NICs and board overhead. HBM2 access
      // energy is on the order of 100 pJ/B delivered to the core.
      pm.core_active = units::Watts{1.6};
      pm.core_idle = units::Watts{0.25};
      pm.cmg_uncore = units::Watts{6.0};
      pm.node_base = units::Watts{35.0};
      pm.dram_energy_per_byte = units::Joules{1.0e-10};
      pm.link_active = units::Watts{2.0};
      pm.links_per_node = 4.0;
      break;
    case arch::MicroArch::kSkylake:
      // 2 x Xeon 8160 (150 W TDP each over 24 cores), DDR4 at roughly
      // 150 pJ/B, OmniPath HFI ~7.4 W active.
      pm.core_active = units::Watts{4.5};
      pm.core_idle = units::Watts{0.8};
      pm.cmg_uncore = units::Watts{18.0};
      pm.node_base = units::Watts{60.0};
      pm.dram_energy_per_byte = units::Joules{1.5e-10};
      pm.link_active = units::Watts{7.4};
      pm.links_per_node = 1.0;
      break;
    case arch::MicroArch::kGeneric:
      pm.core_active = units::Watts{3.0};
      pm.core_idle = units::Watts{0.5};
      pm.cmg_uncore = units::Watts{10.0};
      pm.node_base = units::Watts{50.0};
      pm.dram_energy_per_byte = units::Joules{1.2e-10};
      pm.link_active = units::Watts{3.0};
      pm.links_per_node = 2.0;
      break;
  }
  validate_or_throw(pm);
  return pm;
}

namespace {
void require(bool ok, const char* field) {
  if (!ok) {
    throw std::invalid_argument(std::string("power: ") + field +
                                " must be finite and >= 0");
  }
}
bool valid(double v) { return std::isfinite(v) && v >= 0.0; }
}  // namespace

void validate_or_throw(const PowerModel& model) {
  require(valid(model.core_active.value()), "core_active");
  require(valid(model.core_idle.value()), "core_idle");
  require(valid(model.cmg_uncore.value()), "cmg_uncore");
  require(valid(model.node_base.value()), "node_base");
  require(valid(model.dram_energy_per_byte.value()), "dram_energy_per_byte");
  require(valid(model.link_active.value()), "link_active");
  require(valid(model.links_per_node), "links_per_node");
  if (model.core_idle > model.core_active) {
    throw std::invalid_argument(
        "power: core_idle must not exceed core_active");
  }
}

arch::MachineModel apply_dvfs(const arch::MachineModel& machine,
                              const DvfsState& state) {
  CTESIM_EXPECTS(state.freq_scale > 0.0 && state.freq_scale <= 1.0);
  if (state.nominal()) return machine;
  arch::MachineModel scaled = machine;
  scaled.node.core.freq_ghz *= state.freq_scale;
  return scaled;
}

}  // namespace ctesim::power
