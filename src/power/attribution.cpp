#include "power/attribution.h"

#include <algorithm>

#include "util/check.h"

namespace ctesim::power {

KernelEnergy attribute_kernel(const roofline::Breakdown& b, int cores,
                              const arch::NodeModel& node,
                              const PowerModel& model,
                              const DvfsState& state) {
  CTESIM_EXPECTS(cores >= 1 && cores <= node.core_count());
  const units::Seconds total{b.total_s};
  // The roofline overlap rule guarantees total_s >= compute_s; the
  // remainder is memory-stall time where cores fall back to idle draw.
  const units::Seconds busy{std::min(b.compute_s, b.total_s)};
  const units::Seconds stalled = total - busy;
  KernelEnergy e;
  e.core_j = cores * (model.core_active * state.power_scale() * busy +
                      model.core_idle * stalled);
  e.memory_j = b.bytes * model.dram_energy_per_byte;
  e.static_j =
      (node.num_domains * model.cmg_uncore + model.node_base) * total;
  e.total_j = e.core_j + e.memory_j + e.static_j;
  e.edp_js = e.total_j.value() * b.total_s;
  return e;
}

JobDraw job_draw(const arch::NodeModel& node, const PowerModel& model,
                 const DvfsState& state, double bytes_per_node,
                 double runtime_s, double comm_fraction) {
  CTESIM_EXPECTS(bytes_per_node >= 0.0);
  CTESIM_EXPECTS(comm_fraction >= 0.0 && comm_fraction < 1.0);
  JobDraw draw;
  draw.cpu_w = model.node_active(node, state);
  if (runtime_s > 0.0) {
    const units::Joules traffic_j =
        bytes_per_node * model.dram_energy_per_byte;
    draw.mem_w = traffic_j / units::Seconds{runtime_s};
    draw.net_w =
        comm_fraction * model.links_per_node * model.link_active;
  }
  return draw;
}

units::Joules link_energy(const PowerModel& model,
                          double busy_link_seconds) {
  CTESIM_EXPECTS(busy_link_seconds >= 0.0);
  return model.link_active * units::Seconds{busy_link_seconds};
}

}  // namespace ctesim::power
