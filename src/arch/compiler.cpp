#include "arch/compiler.h"

#include "util/check.h"

namespace ctesim::arch {

namespace {

struct CodegenRow {
  double vectorization;    ///< fraction of vectorizable work emitted as SIMD
  double scalar_quality;   ///< scalar code-generation quality multiplier
  double mem_efficiency;   ///< fraction of best streaming bandwidth sustained
};

// Rows indexed by KernelClass, one table per (compiler, microarchitecture)
// pair that occurs in the paper. Values are modelling constants: the
// vectorization column encodes the paper's Section VI finding (GNU cannot
// leverage SVE on the applications), the mem_efficiency column encodes the
// HBM-needs-prefetch behaviour of A64FX vs the latency-tolerant Skylake.
constexpr int kNumClasses = 10;

// GNU on A64FX: scalar-only application code, no software prefetch.
constexpr CodegenRow kGnuA64fx[kNumClasses] = {
    /* FmaThroughput     */ {1.00, 1.00, 0.90},  // hand-written asm kernel
    /* Stream            */ {0.90, 0.95, 0.62},  // no zfill, no sw prefetch
    /* DenseLinAlg       */ {0.40, 0.90, 0.75},
    /* SparseSolver      */ {0.04, 0.85, 0.145},
    /* Stencil           */ {0.12, 0.88, 0.30},
    /* FemAssembly       */ {0.02, 0.85, 0.35},
    /* MdNonbonded       */ {0.28, 0.88, 0.45},  // GMX_SIMD=ARM_SVE partial
    /* SpectralTransform */ {0.10, 0.85, 0.35},
    /* Physics           */ {0.01, 0.62, 0.30},
    /* Generic           */ {0.08, 0.85, 0.35},
};

// Fujitsu on A64FX: vectorizes regular kernels well, emits prefetch/zfill
// (the Table II STREAM flags), but failed to build the applications at all.
constexpr CodegenRow kFujitsuA64fx[kNumClasses] = {
    /* FmaThroughput     */ {1.00, 1.00, 0.95},
    /* Stream            */ {1.00, 1.00, 1.00},
    /* DenseLinAlg       */ {0.85, 1.00, 0.90},
    /* SparseSolver      */ {0.35, 1.00, 0.55},  // vanilla HPCG build
    /* Stencil           */ {0.60, 1.00, 0.70},
    /* FemAssembly       */ {0.25, 0.95, 0.55},
    /* MdNonbonded       */ {0.40, 0.95, 0.60},
    /* SpectralTransform */ {0.45, 0.95, 0.60},
    /* Physics           */ {0.05, 0.90, 0.45},
    /* Generic           */ {0.30, 0.95, 0.55},
};

// Intel on Skylake: mature AVX-512 code generation; deep OoO hides DDR4
// latency so mem_efficiency stays high even for indirect accesses.
constexpr CodegenRow kIntelSkx[kNumClasses] = {
    /* FmaThroughput     */ {1.00, 1.00, 0.90},
    /* Stream            */ {1.00, 1.00, 1.00},
    /* DenseLinAlg       */ {0.80, 1.00, 0.90},
    /* SparseSolver      */ {0.20, 1.00, 0.85},
    /* Stencil           */ {0.50, 1.00, 0.88},
    /* FemAssembly       */ {0.58, 1.00, 0.85},
    /* MdNonbonded       */ {0.55, 1.00, 0.85},
    /* SpectralTransform */ {0.45, 1.00, 0.85},
    /* Physics           */ {0.08, 0.95, 0.80},
    /* Generic           */ {0.30, 1.00, 0.85},
};

// GNU on Skylake (Alya reference build, Table III): slightly behind Intel.
constexpr CodegenRow kGnuSkx[kNumClasses] = {
    /* FmaThroughput     */ {1.00, 1.00, 0.90},
    /* Stream            */ {0.95, 0.95, 0.95},
    /* DenseLinAlg       */ {0.70, 0.95, 0.88},
    /* SparseSolver      */ {0.15, 0.95, 0.85},
    /* Stencil           */ {0.45, 0.95, 0.86},
    /* FemAssembly       */ {0.30, 0.95, 0.85},
    /* MdNonbonded       */ {0.50, 0.95, 0.85},
    /* SpectralTransform */ {0.40, 0.95, 0.85},
    /* Physics           */ {0.06, 0.92, 0.80},
    /* Generic           */ {0.25, 0.95, 0.85},
};

// Vendor-tuned binaries (LINPACK, optimized HPCG): hand-optimized for the
// exact microarchitecture.
constexpr CodegenRow kVendorA64fx[kNumClasses] = {
    /* FmaThroughput     */ {1.00, 1.00, 0.95},
    /* Stream            */ {1.00, 1.00, 1.00},
    /* DenseLinAlg       */ {0.98, 1.00, 0.95},
    /* SparseSolver      */ {0.75, 1.00, 0.93},  // optimized HPCG
    /* Stencil           */ {0.90, 1.00, 0.93},
    /* FemAssembly       */ {0.80, 1.00, 0.90},
    /* MdNonbonded       */ {0.85, 1.00, 0.90},
    /* SpectralTransform */ {0.85, 1.00, 0.90},
    /* Physics           */ {0.40, 1.00, 0.80},
    /* Generic           */ {0.80, 1.00, 0.90},
};

constexpr CodegenRow kVendorSkx[kNumClasses] = {
    /* FmaThroughput     */ {1.00, 1.00, 0.90},
    /* Stream            */ {1.00, 1.00, 1.00},
    /* DenseLinAlg       */ {0.93, 1.00, 0.92},
    /* SparseSolver      */ {0.45, 1.00, 0.87},  // optimized HPCG (MKL)
    /* Stencil           */ {0.75, 1.00, 0.90},
    /* FemAssembly       */ {0.70, 1.00, 0.88},
    /* MdNonbonded       */ {0.75, 1.00, 0.88},
    /* SpectralTransform */ {0.75, 1.00, 0.88},
    /* Physics           */ {0.30, 1.00, 0.82},
    /* Generic           */ {0.70, 1.00, 0.88},
};

// Conservative fallback for user-defined machines.
constexpr CodegenRow kGenericRow = {0.30, 0.90, 0.70};

const CodegenRow* table_for(CompilerVendor vendor, MicroArch uarch) {
  switch (uarch) {
    case MicroArch::kA64fx:
      switch (vendor) {
        case CompilerVendor::kGnu:
          return kGnuA64fx;
        case CompilerVendor::kFujitsu:
          return kFujitsuA64fx;
        case CompilerVendor::kVendorTuned:
          return kVendorA64fx;
        case CompilerVendor::kIntel:
          return nullptr;  // Intel does not target A64FX
      }
      return nullptr;
    case MicroArch::kSkylake:
      switch (vendor) {
        case CompilerVendor::kGnu:
          return kGnuSkx;
        case CompilerVendor::kIntel:
          return kIntelSkx;
        case CompilerVendor::kVendorTuned:
          return kVendorSkx;
        case CompilerVendor::kFujitsu:
          return nullptr;  // Fujitsu does not target x86
      }
      return nullptr;
    case MicroArch::kGeneric:
      return nullptr;
  }
  return nullptr;
}

const CodegenRow& row_for(CompilerVendor vendor, KernelClass k,
                          const CoreModel& core) {
  const CodegenRow* table = table_for(vendor, core.uarch);
  if (table == nullptr) return kGenericRow;
  const int idx = static_cast<int>(k);
  CTESIM_EXPECTS(idx >= 0 && idx < kNumClasses);
  return table[idx];
}

}  // namespace

const char* name_of(KernelClass k) {
  switch (k) {
    case KernelClass::kFmaThroughput:
      return "fma-throughput";
    case KernelClass::kStream:
      return "stream";
    case KernelClass::kDenseLinAlg:
      return "dense-linalg";
    case KernelClass::kSparseSolver:
      return "sparse-solver";
    case KernelClass::kStencil:
      return "stencil";
    case KernelClass::kFemAssembly:
      return "fem-assembly";
    case KernelClass::kMdNonbonded:
      return "md-nonbonded";
    case KernelClass::kSpectralTransform:
      return "spectral-transform";
    case KernelClass::kPhysics:
      return "physics";
    case KernelClass::kGeneric:
      return "generic";
  }
  return "?";
}

const char* name_of(CompilerVendor v) {
  switch (v) {
    case CompilerVendor::kGnu:
      return "GNU";
    case CompilerVendor::kFujitsu:
      return "Fujitsu";
    case CompilerVendor::kIntel:
      return "Intel";
    case CompilerVendor::kVendorTuned:
      return "vendor-tuned";
  }
  return "?";
}

CompilerModel::CompilerModel(CompilerVendor vendor, std::string version)
    : vendor_(vendor), version_(std::move(version)) {}

double CompilerModel::vectorization(KernelClass k,
                                    const CoreModel& core) const {
  return row_for(vendor_, k, core).vectorization;
}

double CompilerModel::scalar_quality(KernelClass k,
                                     const CoreModel& core) const {
  return row_for(vendor_, k, core).scalar_quality;
}

double CompilerModel::mem_efficiency(KernelClass k,
                                     const CoreModel& core) const {
  return row_for(vendor_, k, core).mem_efficiency;
}

}  // namespace ctesim::arch
