// Factory functions building the two machines of the paper (Table I) and
// the compilers used on them (Tables II and III).
#pragma once

#include "arch/compiler.h"
#include "arch/machine.h"

namespace ctesim::arch {

/// CTE-Arm: 192 nodes × 1 Fujitsu A64FX (48 cores, 4 CMGs, HBM2, SVE-512),
/// TofuD 6D-torus interconnect.
MachineModel cte_arm();

/// MareNostrum 4: 3456 nodes × 2 Intel Xeon Platinum 8160 (2×24 cores,
/// DDR4-2666 ×6ch/socket, AVX-512), Intel OmniPath interconnect.
MachineModel marenostrum4();

/// Compilers from Tables II/III.
CompilerModel gnu_compiler();       ///< GNU 8.3.1-sve / 11.0.0
CompilerModel fujitsu_compiler();   ///< Fujitsu 1.2.26b
CompilerModel intel_compiler();     ///< Intel 2017.4 / 2018.4 / 19.1
CompilerModel vendor_tuned();       ///< hand-tuned vendor binaries (HPL/HPCG)

/// The compiler actually used for the application runs on each machine in
/// the paper: GNU on CTE-Arm (Fujitsu failed to build the apps, Section V),
/// Intel on MareNostrum 4.
CompilerModel default_app_compiler(const MachineModel& machine);

}  // namespace ctesim::arch
