// Compute-node model: a set of identical NUMA domains (CMGs / sockets)
// around one core model, plus the intra-node interconnect (A64FX ring bus /
// Skylake UPI) that caps what a *single process* can draw across domains.
#pragma once

#include <algorithm>
#include <string>

#include "arch/core_model.h"
#include "arch/memory.h"
#include "util/check.h"

namespace ctesim::arch {

struct NodeModel {
  CoreModel core;
  MemoryDomainModel domain;   ///< all domains identical
  int num_domains = 1;
  int sockets = 1;            ///< for Table I reporting
  /// Aggregate bandwidth ceiling for one process whose pages are spread
  /// across domains (traffic crosses the inter-domain fabric). The paper's
  /// OpenMP-only STREAM on A64FX saturates at 29% of peak because of this.
  /// Zero means "no cap beyond the sum of domain ceilings".
  double single_process_bw_cap = 0.0;
  /// Per-thread streaming rate in the single-process spread regime (pages
  /// first-touched round-robin, some accesses remote). Defaults to the
  /// domain's local rate when zero.
  double sp_thread_bw = 0.0;
  /// Intra-node message copy bandwidth (shared-memory MPI transport).
  double shm_bw = 0.0;
  /// Intra-node message latency (shared-memory MPI transport), seconds.
  double shm_latency = 0.0;
  double l2_total_mb = 0.0;  ///< L2 capacity per node
  double l3_total_mb = 0.0;  ///< L3 capacity per node (0 = none, as A64FX)

  /// Last-level cache capacity per node — drives cache-reuse models
  /// (e.g. HPCG effective memory traffic).
  units::Bytes llc_bytes() const {
    const double mb = l3_total_mb > 0.0 ? l3_total_mb + l2_total_mb
                                        : l2_total_mb;
    return units::Bytes{mb * 1024.0 * 1024.0};
  }

  int core_count() const { return domain.cores * num_domains; }
  double memory_gb() const { return domain.capacity_gb * num_domains; }
  units::BytesPerSec peak_bw() const {
    return units::BytesPerSec{domain.peak_bw * num_domains};
  }

  /// DP peak per node (Table I row "DP Peak / node").
  units::FlopsPerSec peak_flops(Precision p = Precision::kDouble) const {
    return core.peak_vector_flops(p) * core_count();
  }

  /// Achieved bandwidth for `procs` processes × `threads_per_proc` threads,
  /// processes pinned one per domain (the hybrid MPI+OpenMP layout of
  /// Fig. 3). Unused domains contribute nothing.
  units::BytesPerSec hybrid_bw(int procs, int threads_per_proc) const {
    CTESIM_EXPECTS(procs >= 1 && procs <= num_domains);
    CTESIM_EXPECTS(threads_per_proc >= 1);
    CTESIM_EXPECTS(procs * threads_per_proc <= core_count());
    return procs * domain.achieved_bw(threads_per_proc);
  }

  /// Achieved bandwidth for one process with `threads` threads bound
  /// round-robin across domains ("spread", the Fig. 2 layout).
  units::BytesPerSec single_process_bw(int threads) const {
    CTESIM_EXPECTS(threads >= 1 && threads <= core_count());
    const double thread_bw =
        sp_thread_bw > 0.0 ? sp_thread_bw : domain.single_thread_bw;
    const units::BytesPerSec cap =
        single_process_bw_cap > 0.0
            ? units::BytesPerSec{single_process_bw_cap}
            : domain.ceiling_bw() * num_domains;
    const units::BytesPerSec linear{thread_bw * threads};
    if (linear <= cap) return linear;
    // Past saturation: plateau with the domain's mild per-thread decay.
    const double sat_threads = cap.value() / thread_bw;
    const double extra = static_cast<double>(threads) - sat_threads;
    const units::BytesPerSec bw =
        cap * (1.0 - domain.contention_decay * extra);
    return std::max(bw, units::BytesPerSec{0.0});
  }

  /// Best achievable node bandwidth for a well-placed workload using
  /// `cores_used` cores (one rank per domain or better). Used by the
  /// roofline model for memory-bound kernel timing.
  units::BytesPerSec best_bw(int cores_used) const {
    CTESIM_EXPECTS(cores_used >= 1 && cores_used <= core_count());
    const int per_domain = domain.cores;
    const int full = cores_used / per_domain;
    const int rest = cores_used % per_domain;
    units::BytesPerSec bw = full * domain.achieved_bw(per_domain);
    if (rest > 0) bw += domain.achieved_bw(rest);
    return bw;
  }
};

}  // namespace ctesim::arch
