// Calibration constants for the CTE-Arm / MareNostrum 4 models.
//
// Every constant is tied to a number reported in the paper (figure/table in
// the comment). Values marked "est." are read off a figure rather than
// stated in the text. EXPERIMENTS.md records how well the calibrated model
// reproduces each experiment. Dimensioned constants carry their unit in
// the type (units::BytesPerSec, units::Seconds — see util/units.h);
// dimensionless factors and efficiencies stay raw doubles.
#pragma once

#include <cstddef>

#include "util/units.h"

namespace ctesim::arch::calib {

// ---------------------------------------------------------------- Fig. 1 --
// FPU microkernel achieves "almost perfectly" the theoretical peak.
inline constexpr double kFpuKernelEfficiency = 0.995;

// ------------------------------------------------------------ Fig. 2 / 3 --
// CTE-Arm (A64FX): per-CMG HBM module.
inline constexpr units::BytesPerSec kA64fxCmgPeakBw{256.0e9};  // 1024 GB/s / 4 CMGs
// Hybrid Fortran STREAM Triad reaches 862.6 GB/s = 84% of peak (Fig. 3).
inline constexpr double kA64fxCmgEffCeiling = 862.6 / 1024.0;
// One well-pinned streaming thread (Fujitsu compiler, zfill+prefetch flags
// of Table II); 862.6/48 = 18.0 GB/s sustained => headroom above that.
inline constexpr units::BytesPerSec kA64fxThreadBw{19.0e9};
// OpenMP-only (one process, spread binding) saturates at 292.0 GB/s with 24
// threads = 29% of peak (Fig. 2): cross-CMG traffic rides the ring bus.
inline constexpr units::BytesPerSec kA64fxSingleProcessCap{292.0e9};
// Per-thread rate in the spread/first-touch regime: cap/24 threads.
inline constexpr units::BytesPerSec kA64fxSpreadThreadBw{292.0e9 / 24.0};
// Slight decline beyond saturation (Fig. 2 shows a mild droop to 48 thr).
inline constexpr double kA64fxContentionDecay = 0.002;
// STREAM language factors (paper: C ~10% faster than Fortran with OpenMP;
// hybrid C reaches only 421.1/862.6 of Fortran — "no explanation" given).
inline constexpr double kA64fxStreamOmpFortranFactor = 1.0 / 1.10;
inline constexpr double kA64fxStreamHybridCFactor = 421.1 / 862.6;

// MareNostrum 4 (Skylake 8160): per-socket 6×DDR4-2666.
inline constexpr units::BytesPerSec kSkxSocketPeakBw{128.0e9};  // 256 GB/s / 2 sockets
// Best OpenMP result 201.2 GB/s = 66% of 256 with 48 threads (Fig. 2).
inline constexpr double kSkxSocketEffCeiling = 201.2 / 256.0;
inline constexpr units::BytesPerSec kSkxThreadBw{8.4e9};  // saturates ~12 thr/socket
inline constexpr double kSkxContentionDecay = 0.0;  // flat plateau (Fig. 2)
// C vs Fortran indistinguishable on MN4 (Fig. 2, blue curves overlap).
inline constexpr double kSkxStreamOmpFortranFactor = 1.0;
inline constexpr double kSkxStreamHybridCFactor = 1.0;

// -------------------------------------------------------------- Fig. 4/5 --
// TofuD (values from Ajima et al. [7] + calibration to Fig. 5 shape).
inline constexpr units::BytesPerSec kTofuLinkBw{6.8e9};  // Table I peak
inline constexpr double kTofuEffBwFactor = 0.92;    // est. large-msg plateau
inline constexpr units::Seconds kTofuBaseLatency = units::microseconds(0.70);
inline constexpr units::Seconds kTofuPerHopLatency = units::microseconds(0.10);
inline constexpr std::size_t kTofuEagerThreshold = 32 * 1024;
inline constexpr units::Seconds kTofuRendezvousLatency = units::microseconds(1.8);
inline constexpr double kTofuHopBwPenalty = 0.012;  // est. >1MB spread, Fig. 5
// Rack-spanning X-dimension links (longer cables, shared trunks): per-hop
// bandwidth loss that groups pairs by X-distance — the bimodal mid-size
// distribution of Fig. 5.
inline constexpr double kTofuLongDimBwPenalty = 0.25;
// Weak node of Fig. 4 ("arms0b1-11c"): receiver-side bandwidth fraction.
inline constexpr int kWeakNodeIndex = 131;
inline constexpr double kWeakNodeRecvFactor = 0.18;  // est. from heatmap

// OmniPath on MN4.
inline constexpr units::BytesPerSec kOpaLinkBw{12.0e9};  // Table I peak
inline constexpr double kOpaEffBwFactor = 0.91;
inline constexpr units::Seconds kOpaBaseLatency = units::microseconds(1.00);
inline constexpr units::Seconds kOpaPerHopLatency = units::microseconds(0.15);
inline constexpr std::size_t kOpaEagerThreshold = 16 * 1024;
inline constexpr units::Seconds kOpaRendezvousLatency = units::microseconds(2.2);
inline constexpr double kOpaHopBwPenalty = 0.01;
inline constexpr int kOpaNodesPerEdgeSwitch = 32;

// Intra-node shared-memory MPI transport (both systems, typical values).
inline constexpr units::BytesPerSec kA64fxShmBw{40.0e9};
inline constexpr units::BytesPerSec kSkxShmBw{50.0e9};
inline constexpr units::Seconds kShmLatency = units::microseconds(0.30);

// ----------------------------------------------------------- OoO scalar ---
// The paper attributes the 2-4x application slowdown to "the weaker
// out-of-order capabilities of the scalar core of the A64FX compared to the
// Intel one" (Section VI). Relative scalar efficiency on real code:
inline constexpr double kA64fxOooEfficiency = 0.38;
inline constexpr double kSkxOooEfficiency = 0.95;

// ---------------------------------------------------------------- Fig. 6 --
// Vendor LINPACK: CTE-Arm reaches 85% of peak at 192 nodes, MN4 63%.
inline constexpr double kHplDgemmEffA64fx = 0.91;  // vendor binary, per node
inline constexpr double kHplDgemmEffSkx = 0.70;    // est. from 1-node 1.25x
                                                   // speedup (Table IV)

// ---------------------------------------------------------------- Fig. 7 --
// HPCG optimized: CTE-Arm 2.91% (1 node) / 2.96% (192) of peak; Table IV
// gives speedups 2.50x (1 node) and 3.24x (192 nodes) over MN4.
// Memory-traffic efficiency of the tuned kernels (fraction of STREAM bw
// sustained by SpMV/SymGS):
inline constexpr double kHpcgOptMemEffA64fx = 0.93;
inline constexpr double kHpcgOptMemEffSkx = 0.72;
// Vanilla builds (est. from Fig. 7 bars): fraction of the optimized rate.
inline constexpr double kHpcgVanillaFactorA64fx = 0.55;
inline constexpr double kHpcgVanillaFactorSkx = 0.80;
// Effective memory traffic per flop. A64FX (no L3, 32 MB L2) re-streams
// the operand vectors of SpMV/SymGS; Skylake's 114 MB of L2+L3 captures
// most vector reuse. Values consistent with published HPCG/STREAM pairs
// (Fugaku: 122 GF at ~830 GB/s -> 6.8 B/F; 2x8160: ~40 GF at ~180 GB/s ->
// 4.5 B/F) and tuned to the paper's Fig. 7 percentages.
inline constexpr double kHpcgBytesPerFlopA64fx = 8.2;
inline constexpr double kHpcgBytesPerFlopSkx = 3.7;
// Multi-node scaling factor at 192 nodes (Fig. 7: CTE-Arm is *flat or
// slightly better* at scale, 2.91% -> 2.96%; Table IV speedup grows from
// 2.50x to 3.24x, i.e. MN4 loses ~21%).
inline constexpr double kHpcgScale192A64fx = 2.96 / 2.91;
inline constexpr double kHpcgScale192Skx = (2.50 / 3.24) * (2.96 / 2.91);

}  // namespace ctesim::arch::calib
