// Per-core microarchitecture model: frequency, FMA pipes, vector width, and
// scalar-issue behaviour. Enough to compute the theoretical peaks of Table I
// and the Fig. 1 FPU-microkernel numbers, and to feed the roofline model.
#pragma once

#include <string>

#include "util/check.h"
#include "util/units.h"

namespace ctesim::arch {

enum class Precision { kHalf, kSingle, kDouble };

/// Bits per element of a floating-point precision.
constexpr int bits_of(Precision p) {
  switch (p) {
    case Precision::kHalf:
      return 16;
    case Precision::kSingle:
      return 32;
    case Precision::kDouble:
      return 64;
  }
  return 64;
}

constexpr const char* name_of(Precision p) {
  switch (p) {
    case Precision::kHalf:
      return "half";
    case Precision::kSingle:
      return "single";
    case Precision::kDouble:
      return "double";
  }
  return "?";
}

/// Microarchitecture family — key for the compiler model's per-target
/// code-generation quality tables.
enum class MicroArch { kA64fx, kSkylake, kGeneric };

struct CoreModel {
  std::string isa_name;        ///< e.g. "SVE", "AVX512"
  MicroArch uarch = MicroArch::kGeneric;
  double freq_ghz = 0.0;       ///< core clock (turbo disabled, as in Table I)
  int vector_bits = 0;         ///< SIMD register width
  int fma_pipes = 2;           ///< vector FMA pipelines per core
  int flops_per_fma = 2;       ///< fused multiply-add = 2 FP ops
  int scalar_fma_per_cycle = 2;  ///< scalar FMA issue slots per cycle
  bool fp16_vector = false;    ///< native half-precision vector arithmetic
  /// Fraction of ideal scalar issue achieved on real (dependent, branchy)
  /// code — the out-of-order "muscle" of the core. The paper attributes the
  /// application slowdown to A64FX's weaker OoO scalar core (Section VI).
  double ooo_scalar_efficiency = 1.0;
  int l1d_kb = 0;  ///< L1 data cache per core (Table I)

  /// Vector-unit peak for one core: P_v = s * i * f * o (paper
  /// Section III-A). Half precision on machines without native FP16 vectors
  /// falls back to the single-precision rate (elements are widened).
  units::FlopsPerSec peak_vector_flops(Precision p) const {
    CTESIM_EXPECTS(freq_ghz > 0.0 && vector_bits > 0);
    const Precision effective =
        (p == Precision::kHalf && !fp16_vector) ? Precision::kSingle : p;
    const double lanes =
        static_cast<double>(vector_bits) / bits_of(effective);
    return units::FlopsPerSec{lanes * fma_pipes * flops_per_fma * freq_ghz *
                              1e9};
  }

  /// Scalar-pipe peak for one core (precision-independent: scalar FMA
  /// units retire one element per op regardless of width).
  units::FlopsPerSec peak_scalar_flops() const {
    CTESIM_EXPECTS(freq_ghz > 0.0);
    return units::FlopsPerSec{static_cast<double>(scalar_fma_per_cycle) *
                              flops_per_fma * freq_ghz * 1e9};
  }

  /// Scalar throughput achieved on real application code.
  units::FlopsPerSec effective_scalar_flops() const {
    return peak_scalar_flops() * ooo_scalar_efficiency;
  }
};

}  // namespace ctesim::arch
