#include "arch/configs.h"

#include "arch/calibration.h"
#include "arch/validate.h"

namespace ctesim::arch {

MachineModel cte_arm() {
  MachineModel m;
  m.name = "CTE-Arm";
  m.integrator = "Fujitsu";
  m.core_arch = "Armv8";
  m.simd = "NEON, SVE";
  m.cpu_name = "A64FX";
  m.memory_tech = "HBM";

  m.node.core = CoreModel{
      .isa_name = "SVE",
      .uarch = MicroArch::kA64fx,
      .freq_ghz = 2.20,
      .vector_bits = 512,
      .fma_pipes = 2,
      .flops_per_fma = 2,
      .scalar_fma_per_cycle = 2,
      .fp16_vector = true,  // A64FX has native FP16 SVE arithmetic
      .ooo_scalar_efficiency = calib::kA64fxOooEfficiency,
      .l1d_kb = 64,
  };
  m.node.domain = MemoryDomainModel{
      .cores = 12,  // one Core Memory Group
      .capacity_gb = 8.0,
      .peak_bw = calib::kA64fxCmgPeakBw.value(),
      .eff_ceiling = calib::kA64fxCmgEffCeiling,
      .single_thread_bw = calib::kA64fxThreadBw.value(),
      .contention_decay = calib::kA64fxContentionDecay,
  };
  m.node.num_domains = 4;
  m.node.sockets = 1;
  m.node.single_process_bw_cap = calib::kA64fxSingleProcessCap.value();
  m.node.sp_thread_bw = calib::kA64fxSpreadThreadBw.value();
  m.node.shm_bw = calib::kA64fxShmBw.value();
  m.node.shm_latency = calib::kShmLatency.value();
  m.node.l2_total_mb = 32.0;  // 8 MB per CMG, no L3
  m.node.l3_total_mb = 0.0;

  m.num_nodes = 192;
  m.interconnect = InterconnectSpec{
      .name = "TofuD",
      .kind = InterconnectSpec::Kind::kTorus,
      // 6D torus X,Y,Z,a,b,c; the (a,b,c)=(2,3,2) unit group is fixed in
      // TofuD hardware; 4*2*2 unit groups give the 192 nodes of CTE-Arm.
      .dims = {4, 2, 2, 2, 3, 2},
      .link_bw = calib::kTofuLinkBw.value(),
      .eff_bw_factor = calib::kTofuEffBwFactor,
      .base_latency_s = calib::kTofuBaseLatency.value(),
      .per_hop_latency_s = calib::kTofuPerHopLatency.value(),
      .eager_threshold = calib::kTofuEagerThreshold,
      .rendezvous_latency_s = calib::kTofuRendezvousLatency.value(),
      .hop_bw_penalty = calib::kTofuHopBwPenalty,
      .long_dim_bw_penalty = calib::kTofuLongDimBwPenalty,
  };
  validate_or_throw(m);
  return m;
}

MachineModel marenostrum4() {
  MachineModel m;
  m.name = "MareNostrum 4";
  m.integrator = "Lenovo";
  m.core_arch = "Intel x86";
  m.simd = "AVX512";
  m.cpu_name = "Intel Xeon Platinum 8160";
  m.memory_tech = "DDR4-2666";

  m.node.core = CoreModel{
      .isa_name = "AVX512",
      .uarch = MicroArch::kSkylake,
      .freq_ghz = 2.10,
      .vector_bits = 512,
      .fma_pipes = 2,
      .flops_per_fma = 2,
      .scalar_fma_per_cycle = 2,
      .fp16_vector = false,  // no native FP16 arithmetic on Skylake
      .ooo_scalar_efficiency = calib::kSkxOooEfficiency,
      .l1d_kb = 32,
  };
  m.node.domain = MemoryDomainModel{
      .cores = 24,  // one Skylake socket
      .capacity_gb = 48.0,
      .peak_bw = calib::kSkxSocketPeakBw.value(),
      .eff_ceiling = calib::kSkxSocketEffCeiling,
      .single_thread_bw = calib::kSkxThreadBw.value(),
      .contention_decay = calib::kSkxContentionDecay,
  };
  m.node.num_domains = 2;
  m.node.sockets = 2;
  m.node.single_process_bw_cap = 0.0;  // UPI does not bottleneck STREAM
  m.node.sp_thread_bw = calib::kSkxThreadBw.value();
  m.node.shm_bw = calib::kSkxShmBw.value();
  m.node.shm_latency = calib::kShmLatency.value();
  m.node.l2_total_mb = 48.0;  // 1 MB per core
  m.node.l3_total_mb = 66.0;  // 33 MB per socket

  m.num_nodes = 3456;
  m.interconnect = InterconnectSpec{
      .name = "Intel OmniPath",
      .kind = InterconnectSpec::Kind::kFatTree,
      .dims = {},
      .link_bw = calib::kOpaLinkBw.value(),
      .eff_bw_factor = calib::kOpaEffBwFactor,
      .base_latency_s = calib::kOpaBaseLatency.value(),
      .per_hop_latency_s = calib::kOpaPerHopLatency.value(),
      .eager_threshold = calib::kOpaEagerThreshold,
      .rendezvous_latency_s = calib::kOpaRendezvousLatency.value(),
      .hop_bw_penalty = calib::kOpaHopBwPenalty,
  };
  validate_or_throw(m);
  return m;
}

CompilerModel gnu_compiler() {
  return CompilerModel(CompilerVendor::kGnu, "8.3.1-sve");
}

CompilerModel fujitsu_compiler() {
  return CompilerModel(CompilerVendor::kFujitsu, "1.2.26b");
}

CompilerModel intel_compiler() {
  return CompilerModel(CompilerVendor::kIntel, "2018.4");
}

CompilerModel vendor_tuned() {
  return CompilerModel(CompilerVendor::kVendorTuned, "vendor");
}

CompilerModel default_app_compiler(const MachineModel& machine) {
  if (machine.core_arch == "Armv8") return gnu_compiler();
  return intel_compiler();
}

}  // namespace ctesim::arch
