// NUMA-domain memory model: a Core Memory Group (CMG) on A64FX, a socket on
// Skylake. Bandwidth follows a concurrency-limited saturation law — each
// streaming thread contributes up to `single_thread_bw` until the domain's
// effective ceiling is reached — which reproduces the thread-scaling shape
// of Fig. 2 / Fig. 3.
#pragma once

#include "util/check.h"
#include "util/units.h"

namespace ctesim::arch {

struct MemoryDomainModel {
  int cores = 0;                ///< cores attached to this domain
  double capacity_gb = 0.0;     ///< local memory capacity
  double peak_bw = 0.0;         ///< vendor peak, bytes/s
  double eff_ceiling = 0.0;     ///< best sustainable fraction of peak [0,1]
  double single_thread_bw = 0.0;  ///< one streaming thread, bytes/s
  /// Relative throughput loss per thread beyond the saturation point
  /// (oversubscribed prefetch/queue contention); 0 = flat plateau.
  double contention_decay = 0.0;

  /// Sustainable bandwidth ceiling.
  units::BytesPerSec ceiling_bw() const {
    return units::BytesPerSec{peak_bw * eff_ceiling};
  }

  /// Achieved STREAM-like bandwidth with `threads` threads local to this
  /// domain, all accessing local memory.
  units::BytesPerSec achieved_bw(int threads) const {
    CTESIM_EXPECTS(threads >= 0);
    if (threads == 0) return units::BytesPerSec{0.0};
    const units::BytesPerSec linear{single_thread_bw * threads};
    const units::BytesPerSec cap = ceiling_bw();
    if (linear <= cap) return linear;
    // Past saturation: plateau with mild decay per extra thread.
    const double sat_threads = cap.value() / single_thread_bw;
    const double extra = static_cast<double>(threads) - sat_threads;
    const units::BytesPerSec bw = cap * (1.0 - contention_decay * extra);
    return bw > units::BytesPerSec{0.0} ? bw : units::BytesPerSec{0.0};
  }
};

}  // namespace ctesim::arch
