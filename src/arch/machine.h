// Whole-machine description: node model × node count × interconnect. The
// two instances used throughout (CTE-Arm, MareNostrum 4) are built by
// arch/configs.h from Table I of the paper.
#pragma once

#include <string>
#include <vector>

#include "arch/node.h"

namespace ctesim::arch {

/// Interconnect description consumed by net::Network.
struct InterconnectSpec {
  enum class Kind { kTorus, kFatTree };

  std::string name;            ///< "TofuD", "Intel OmniPath"
  Kind kind = Kind::kFatTree;
  std::vector<int> dims;       ///< torus dimension sizes (empty for fat-tree)
  double link_bw = 0.0;        ///< peak bytes/s per link per direction
  double eff_bw_factor = 1.0;  ///< achieved fraction of link_bw
  double base_latency_s = 0.0;     ///< software + NIC injection latency
  double per_hop_latency_s = 0.0;  ///< switch/router traversal per hop
  std::size_t eager_threshold = 0;  ///< bytes; above it, rendezvous protocol
  double rendezvous_latency_s = 0.0;  ///< extra handshake round-trip
  /// Per-hop relative bandwidth loss for long routes (store-and-forward /
  /// shared-link effects) — source of the >1 MB variability in Fig. 5.
  double hop_bw_penalty = 0.0;
  /// Additional per-hop bandwidth loss along the torus' first dimension
  /// (the rack-spanning X links of TofuD, longer cables and shared
  /// inter-rack trunks). Splits node pairs into distinct bandwidth groups
  /// by X-distance — the bimodal mid-size distribution of Fig. 5.
  double long_dim_bw_penalty = 0.0;
};

struct MachineModel {
  std::string name;
  std::string integrator;
  std::string core_arch;
  std::string simd;
  std::string cpu_name;
  std::string memory_tech;
  NodeModel node;
  int num_nodes = 0;
  InterconnectSpec interconnect;

  units::FlopsPerSec peak_flops_total(Precision p = Precision::kDouble) const {
    return node.peak_flops(p) * num_nodes;
  }
};

}  // namespace ctesim::arch
