// Compiler model.
//
// The paper's central finding is that application performance on A64FX is
// limited by what the compiler achieves, not by the silicon: GNU cannot
// exploit SVE on the complex Fortran codes ("we verified that the compiler
// could not leverage the SVE unit in several cases", Section VI), so
// applications run on the weak scalar core, while vendor-tuned binaries
// (LINPACK, optimized HPCG) vectorize near-perfectly.
//
// We make that executable: a CompilerModel maps (kernel class, target ISA)
// to an achieved-vectorization fraction and a scalar code-quality factor.
// The numbers are calibration constants (arch/calibration.h), each tied to a
// paper observation.
#pragma once

#include <string>

#include "arch/core_model.h"

namespace ctesim::arch {

enum class CompilerVendor { kGnu, kFujitsu, kIntel, kVendorTuned };

enum class Language { kC, kFortran };

/// Classes of computational kernels with distinct vectorizability and
/// code-generation behaviour.
enum class KernelClass {
  kFmaThroughput,      ///< hand-written FMA microkernel (Fig. 1)
  kStream,             ///< contiguous streaming loads/stores (Fig. 2/3)
  kDenseLinAlg,        ///< DGEMM-like blocked dense kernels (HPL)
  kSparseSolver,       ///< SpMV / SymGS, indirect accesses (HPCG, solvers)
  kStencil,            ///< structured-grid finite differences (NEMO, WRF)
  kFemAssembly,        ///< unstructured FEM element loops (Alya assembly)
  kMdNonbonded,        ///< MD pairwise force loops (Gromacs)
  kSpectralTransform,  ///< FFT/Legendre transforms (OpenIFS)
  kPhysics,            ///< column physics, branchy Fortran (OpenIFS, WRF)
  kGeneric,            ///< anything else
};

const char* name_of(KernelClass k);
const char* name_of(CompilerVendor v);

class CompilerModel {
 public:
  CompilerModel(CompilerVendor vendor, std::string version);

  CompilerVendor vendor() const { return vendor_; }
  const std::string& version() const { return version_; }

  /// Fraction of a kernel's vectorizable work actually emitted as vector
  /// instructions for the given target core.
  double vectorization(KernelClass k, const CoreModel& core) const;

  /// Multiplier on scalar throughput capturing code-generation quality for
  /// the non-vector part (register allocation, unrolling, prefetch).
  double scalar_quality(KernelClass k, const CoreModel& core) const;

  /// Fraction of the node's best streaming bandwidth this kernel class
  /// sustains with this compiler's code. Crucial A64FX effect: HBM needs
  /// deep memory-level parallelism; without software prefetch (which only
  /// the Fujitsu compiler emits, Table II flags) indirect/latency-bound
  /// access patterns achieve a small fraction of STREAM bandwidth, while
  /// Skylake's deep OoO window hides DDR4 latency almost for free.
  double mem_efficiency(KernelClass k, const CoreModel& core) const;

 private:
  CompilerVendor vendor_;
  std::string version_;
};

}  // namespace ctesim::arch
