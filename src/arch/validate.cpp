#include "arch/validate.h"

#include <sstream>
#include <stdexcept>

namespace ctesim::arch {

namespace {

void check(std::vector<std::string>& problems, bool ok,
           const std::string& message) {
  if (!ok) problems.push_back(message);
}

}  // namespace

std::vector<std::string> validate(const MachineModel& m) {
  std::vector<std::string> problems;

  check(problems, !m.name.empty(), "machine.name: must not be empty");
  check(problems, m.num_nodes >= 1, "machine.nodes: must be >= 1");

  const CoreModel& core = m.node.core;
  check(problems, core.freq_ghz > 0.0, "core.freq_ghz: must be positive");
  check(problems, core.vector_bits >= 64 && core.vector_bits <= 4096,
        "core.vector_bits: expected 64..4096");
  check(problems, (core.vector_bits & (core.vector_bits - 1)) == 0,
        "core.vector_bits: must be a power of two");
  check(problems, core.fma_pipes >= 1, "core.fma_pipes: must be >= 1");
  check(problems, core.scalar_fma_per_cycle >= 1,
        "core.scalar_fma_per_cycle: must be >= 1");
  check(problems,
        core.ooo_scalar_efficiency > 0.0 && core.ooo_scalar_efficiency <= 1.0,
        "core.ooo_scalar_efficiency: must be in (0, 1]");

  const MemoryDomainModel& domain = m.node.domain;
  check(problems, m.node.num_domains >= 1, "memory.domains: must be >= 1");
  check(problems, domain.cores >= 1,
        "memory.cores_per_domain: must be >= 1");
  check(problems, domain.capacity_gb > 0.0,
        "memory.capacity_gb_per_domain: must be positive");
  check(problems, domain.peak_bw > 0.0,
        "memory.peak_bw_gbs_per_domain: must be positive");
  check(problems, domain.eff_ceiling > 0.0 && domain.eff_ceiling <= 1.0,
        "memory.eff_ceiling: must be in (0, 1]");
  check(problems, domain.single_thread_bw > 0.0,
        "memory.single_thread_bw_gbs: must be positive");
  check(problems, domain.single_thread_bw <= domain.peak_bw,
        "memory.single_thread_bw_gbs: exceeds the domain peak");
  check(problems,
        domain.contention_decay >= 0.0 && domain.contention_decay < 0.1,
        "memory.contention_decay: expected [0, 0.1)");
  check(problems, m.node.shm_bw > 0.0, "memory.shm_bw_gbs: must be positive");
  check(problems, m.node.shm_latency >= 0.0,
        "memory.shm_latency_us: must be >= 0");
  check(problems, m.node.single_process_bw_cap >= 0.0,
        "memory.single_process_bw_cap_gbs: must be >= 0");
  check(problems, m.node.sp_thread_bw >= 0.0,
        "memory.sp_thread_bw_gbs: must be >= 0");
  check(problems, m.node.l2_total_mb >= 0.0,
        "cache.l2_total_mb: must be >= 0");
  check(problems, m.node.l3_total_mb >= 0.0,
        "cache.l3_total_mb: must be >= 0");

  const InterconnectSpec& ic = m.interconnect;
  check(problems, ic.link_bw > 0.0,
        "interconnect.link_bw_gbs: must be positive");
  check(problems, ic.eff_bw_factor > 0.0 && ic.eff_bw_factor <= 1.0,
        "interconnect.eff_bw_factor: must be in (0, 1]");
  check(problems, ic.base_latency_s >= 0.0,
        "interconnect.base_latency_us: must be >= 0");
  check(problems, ic.per_hop_latency_s >= 0.0,
        "interconnect.per_hop_latency_us: must be >= 0");
  check(problems, ic.rendezvous_latency_s >= 0.0,
        "interconnect.rendezvous_latency_us: must be >= 0");
  check(problems, ic.hop_bw_penalty >= 0.0 && ic.hop_bw_penalty < 1.0,
        "interconnect.hop_bw_penalty: must be in [0, 1)");
  check(problems,
        ic.long_dim_bw_penalty >= 0.0 && ic.long_dim_bw_penalty < 1.0,
        "interconnect.long_dim_bw_penalty: must be in [0, 1)");
  if (ic.kind == InterconnectSpec::Kind::kTorus) {
    check(problems, !ic.dims.empty(),
          "interconnect.dims: torus needs dimension sizes");
    long total = 1;
    bool dims_ok = true;
    for (int d : ic.dims) {
      if (d < 1) dims_ok = false;
      total *= d;
    }
    check(problems, dims_ok, "interconnect.dims: every size must be >= 1");
    if (dims_ok) {
      check(problems, total >= m.num_nodes,
            "interconnect.dims: torus smaller than machine.nodes");
    }
  }
  return problems;
}

void validate_or_throw(const MachineModel& machine) {
  const auto problems = validate(machine);
  if (problems.empty()) return;
  std::ostringstream os;
  os << "invalid machine model '" << machine.name << "':";
  for (const auto& p : problems) os << "\n  - " << p;
  throw std::invalid_argument(os.str());
}

}  // namespace ctesim::arch
