// Text serialization of machine models: an INI-style format so users can
// define their own cluster in a file and run any ctesim experiment on it
// without recompiling. write_machine() and parse_machine() round-trip.
//
//   [machine]
//   name = MyCluster
//   nodes = 64
//   [core]
//   uarch = a64fx          ; a64fx | skylake | generic
//   freq_ghz = 2.2
//   vector_bits = 512
//   ...
//   [interconnect]
//   kind = torus           ; torus | fattree
//   dims = 4 2 2 2 3 2
//   link_bw_gbs = 6.8
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "arch/machine.h"

namespace ctesim::arch {

/// Thrown on malformed machine files with a line-tagged message.
class MachineParseError : public std::runtime_error {
 public:
  explicit MachineParseError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Parse a machine description (INI format above). Unknown keys are an
/// error; missing keys keep the default-constructed value.
MachineModel parse_machine(std::istream& in);
MachineModel parse_machine_string(const std::string& text);
MachineModel load_machine_file(const std::string& path);

/// Emit the INI representation (parse_machine(write_machine(m)) == m).
void write_machine(std::ostream& out, const MachineModel& machine);
std::string machine_to_string(const MachineModel& machine);
void save_machine_file(const std::string& path, const MachineModel& machine);

}  // namespace ctesim::arch
