#include "arch/machine_io.h"

#include "arch/validate.h"

#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>

#include "util/check.h"

namespace ctesim::arch {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

[[noreturn]] void fail(int line, const std::string& what) {
  throw MachineParseError("machine file line " + std::to_string(line) + ": " +
                          what);
}

MicroArch uarch_from(const std::string& name, int line) {
  if (name == "a64fx") return MicroArch::kA64fx;
  if (name == "skylake") return MicroArch::kSkylake;
  if (name == "generic") return MicroArch::kGeneric;
  fail(line, "unknown uarch '" + name + "'");
}

const char* uarch_name(MicroArch u) {
  switch (u) {
    case MicroArch::kA64fx:
      return "a64fx";
    case MicroArch::kSkylake:
      return "skylake";
    case MicroArch::kGeneric:
      return "generic";
  }
  return "generic";
}

InterconnectSpec::Kind kind_from(const std::string& name, int line) {
  if (name == "torus") return InterconnectSpec::Kind::kTorus;
  if (name == "fattree") return InterconnectSpec::Kind::kFatTree;
  fail(line, "unknown interconnect kind '" + name + "'");
}

double to_double(const std::string& value, int line) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (value.empty() || *end != '\0') fail(line, "bad number '" + value + "'");
  return v;
}

int to_int(const std::string& value, int line) {
  char* end = nullptr;
  const long v = std::strtol(value.c_str(), &end, 10);
  if (value.empty() || *end != '\0') {
    fail(line, "bad integer '" + value + "'");
  }
  return static_cast<int>(v);
}

bool to_bool(const std::string& value, int line) {
  if (value == "true" || value == "1") return true;
  if (value == "false" || value == "0") return false;
  fail(line, "bad bool '" + value + "'");
}

std::vector<int> to_int_list(const std::string& value, int line) {
  std::vector<int> out;
  std::istringstream is(value);
  std::string token;
  while (is >> token) out.push_back(to_int(token, line));
  return out;
}

}  // namespace

MachineModel parse_machine(std::istream& in) {
  MachineModel m;
  std::string section;
  std::string raw;
  int line_no = 0;

  // Dispatch table: (section, key) -> setter.
  using Setter = std::function<void(const std::string&, int)>;
  const std::map<std::pair<std::string, std::string>, Setter> setters = {
      {{"machine", "name"}, [&](const std::string& v, int) { m.name = v; }},
      {{"machine", "integrator"},
       [&](const std::string& v, int) { m.integrator = v; }},
      {{"machine", "core_arch"},
       [&](const std::string& v, int) { m.core_arch = v; }},
      {{"machine", "simd"}, [&](const std::string& v, int) { m.simd = v; }},
      {{"machine", "cpu_name"},
       [&](const std::string& v, int) { m.cpu_name = v; }},
      {{"machine", "memory_tech"},
       [&](const std::string& v, int) { m.memory_tech = v; }},
      {{"machine", "nodes"},
       [&](const std::string& v, int l) { m.num_nodes = to_int(v, l); }},

      {{"core", "isa"},
       [&](const std::string& v, int) { m.node.core.isa_name = v; }},
      {{"core", "uarch"},
       [&](const std::string& v, int l) {
         m.node.core.uarch = uarch_from(v, l);
       }},
      {{"core", "freq_ghz"},
       [&](const std::string& v, int l) {
         m.node.core.freq_ghz = to_double(v, l);
       }},
      {{"core", "vector_bits"},
       [&](const std::string& v, int l) {
         m.node.core.vector_bits = to_int(v, l);
       }},
      {{"core", "fma_pipes"},
       [&](const std::string& v, int l) {
         m.node.core.fma_pipes = to_int(v, l);
       }},
      {{"core", "scalar_fma_per_cycle"},
       [&](const std::string& v, int l) {
         m.node.core.scalar_fma_per_cycle = to_int(v, l);
       }},
      {{"core", "fp16_vector"},
       [&](const std::string& v, int l) {
         m.node.core.fp16_vector = to_bool(v, l);
       }},
      {{"core", "ooo_scalar_efficiency"},
       [&](const std::string& v, int l) {
         m.node.core.ooo_scalar_efficiency = to_double(v, l);
       }},
      {{"core", "l1d_kb"},
       [&](const std::string& v, int l) {
         m.node.core.l1d_kb = to_int(v, l);
       }},

      {{"memory", "domains"},
       [&](const std::string& v, int l) {
         m.node.num_domains = to_int(v, l);
       }},
      {{"memory", "sockets"},
       [&](const std::string& v, int l) { m.node.sockets = to_int(v, l); }},
      {{"memory", "cores_per_domain"},
       [&](const std::string& v, int l) {
         m.node.domain.cores = to_int(v, l);
       }},
      {{"memory", "capacity_gb_per_domain"},
       [&](const std::string& v, int l) {
         m.node.domain.capacity_gb = to_double(v, l);
       }},
      {{"memory", "peak_bw_gbs_per_domain"},
       [&](const std::string& v, int l) {
         m.node.domain.peak_bw = to_double(v, l) * 1e9;
       }},
      {{"memory", "eff_ceiling"},
       [&](const std::string& v, int l) {
         m.node.domain.eff_ceiling = to_double(v, l);
       }},
      {{"memory", "single_thread_bw_gbs"},
       [&](const std::string& v, int l) {
         m.node.domain.single_thread_bw = to_double(v, l) * 1e9;
       }},
      {{"memory", "contention_decay"},
       [&](const std::string& v, int l) {
         m.node.domain.contention_decay = to_double(v, l);
       }},
      {{"memory", "single_process_cap_gbs"},
       [&](const std::string& v, int l) {
         m.node.single_process_bw_cap = to_double(v, l) * 1e9;
       }},
      {{"memory", "sp_thread_bw_gbs"},
       [&](const std::string& v, int l) {
         m.node.sp_thread_bw = to_double(v, l) * 1e9;
       }},
      {{"memory", "shm_bw_gbs"},
       [&](const std::string& v, int l) {
         m.node.shm_bw = to_double(v, l) * 1e9;
       }},
      {{"memory", "shm_latency_us"},
       [&](const std::string& v, int l) {
         m.node.shm_latency = to_double(v, l) * 1e-6;
       }},
      {{"memory", "l2_total_mb"},
       [&](const std::string& v, int l) {
         m.node.l2_total_mb = to_double(v, l);
       }},
      {{"memory", "l3_total_mb"},
       [&](const std::string& v, int l) {
         m.node.l3_total_mb = to_double(v, l);
       }},

      {{"interconnect", "name"},
       [&](const std::string& v, int) { m.interconnect.name = v; }},
      {{"interconnect", "kind"},
       [&](const std::string& v, int l) {
         m.interconnect.kind = kind_from(v, l);
       }},
      {{"interconnect", "dims"},
       [&](const std::string& v, int l) {
         m.interconnect.dims = to_int_list(v, l);
       }},
      {{"interconnect", "link_bw_gbs"},
       [&](const std::string& v, int l) {
         m.interconnect.link_bw = to_double(v, l) * 1e9;
       }},
      {{"interconnect", "eff_bw_factor"},
       [&](const std::string& v, int l) {
         m.interconnect.eff_bw_factor = to_double(v, l);
       }},
      {{"interconnect", "base_latency_us"},
       [&](const std::string& v, int l) {
         m.interconnect.base_latency_s = to_double(v, l) * 1e-6;
       }},
      {{"interconnect", "per_hop_latency_us"},
       [&](const std::string& v, int l) {
         m.interconnect.per_hop_latency_s = to_double(v, l) * 1e-6;
       }},
      {{"interconnect", "eager_threshold"},
       [&](const std::string& v, int l) {
         m.interconnect.eager_threshold =
             static_cast<std::size_t>(to_int(v, l));
       }},
      {{"interconnect", "rendezvous_latency_us"},
       [&](const std::string& v, int l) {
         m.interconnect.rendezvous_latency_s = to_double(v, l) * 1e-6;
       }},
      {{"interconnect", "hop_bw_penalty"},
       [&](const std::string& v, int l) {
         m.interconnect.hop_bw_penalty = to_double(v, l);
       }},
      {{"interconnect", "long_dim_bw_penalty"},
       [&](const std::string& v, int l) {
         m.interconnect.long_dim_bw_penalty = to_double(v, l);
       }},
  };

  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = raw;
    // Strip comments (';' or '#').
    const auto comment = line.find_first_of(";#");
    if (comment != std::string::npos) line = line.substr(0, comment);
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') fail(line_no, "unterminated section header");
      section = trim(line.substr(1, line.size() - 2));
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) fail(line_no, "expected key = value");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    const auto it = setters.find({section, key});
    if (it == setters.end()) {
      fail(line_no, "unknown key '" + section + "." + key + "'");
    }
    it->second(value, line_no);
  }
  return m;
}

MachineModel parse_machine_string(const std::string& text) {
  std::istringstream is(text);
  return parse_machine(is);
}

MachineModel load_machine_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw MachineParseError("cannot open machine file " + path);
  MachineModel machine = parse_machine(in);
  // Files describe complete machines; reject semantic nonsense up front
  // (parse_machine itself allows partial descriptions for programmatic
  // composition).
  validate_or_throw(machine);
  return machine;
}

void write_machine(std::ostream& out, const MachineModel& m) {
  auto num = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  out << "[machine]\n";
  out << "name = " << m.name << "\n";
  out << "integrator = " << m.integrator << "\n";
  out << "core_arch = " << m.core_arch << "\n";
  out << "simd = " << m.simd << "\n";
  out << "cpu_name = " << m.cpu_name << "\n";
  out << "memory_tech = " << m.memory_tech << "\n";
  out << "nodes = " << m.num_nodes << "\n";
  out << "\n[core]\n";
  out << "isa = " << m.node.core.isa_name << "\n";
  out << "uarch = " << uarch_name(m.node.core.uarch) << "\n";
  out << "freq_ghz = " << num(m.node.core.freq_ghz) << "\n";
  out << "vector_bits = " << m.node.core.vector_bits << "\n";
  out << "fma_pipes = " << m.node.core.fma_pipes << "\n";
  out << "scalar_fma_per_cycle = " << m.node.core.scalar_fma_per_cycle
      << "\n";
  out << "fp16_vector = " << (m.node.core.fp16_vector ? "true" : "false")
      << "\n";
  out << "ooo_scalar_efficiency = " << num(m.node.core.ooo_scalar_efficiency)
      << "\n";
  out << "l1d_kb = " << m.node.core.l1d_kb << "\n";
  out << "\n[memory]\n";
  out << "domains = " << m.node.num_domains << "\n";
  out << "sockets = " << m.node.sockets << "\n";
  out << "cores_per_domain = " << m.node.domain.cores << "\n";
  out << "capacity_gb_per_domain = " << num(m.node.domain.capacity_gb)
      << "\n";
  out << "peak_bw_gbs_per_domain = " << num(m.node.domain.peak_bw / 1e9)
      << "\n";
  out << "eff_ceiling = " << num(m.node.domain.eff_ceiling) << "\n";
  out << "single_thread_bw_gbs = "
      << num(m.node.domain.single_thread_bw / 1e9) << "\n";
  out << "contention_decay = " << num(m.node.domain.contention_decay) << "\n";
  out << "single_process_cap_gbs = "
      << num(m.node.single_process_bw_cap / 1e9) << "\n";
  out << "sp_thread_bw_gbs = " << num(m.node.sp_thread_bw / 1e9) << "\n";
  out << "shm_bw_gbs = " << num(m.node.shm_bw / 1e9) << "\n";
  out << "shm_latency_us = " << num(m.node.shm_latency * 1e6) << "\n";
  out << "l2_total_mb = " << num(m.node.l2_total_mb) << "\n";
  out << "l3_total_mb = " << num(m.node.l3_total_mb) << "\n";
  out << "\n[interconnect]\n";
  out << "name = " << m.interconnect.name << "\n";
  out << "kind = "
      << (m.interconnect.kind == InterconnectSpec::Kind::kTorus ? "torus"
                                                                : "fattree")
      << "\n";
  if (!m.interconnect.dims.empty()) {
    out << "dims =";
    for (int d : m.interconnect.dims) out << ' ' << d;
    out << "\n";
  }
  out << "link_bw_gbs = " << num(m.interconnect.link_bw / 1e9) << "\n";
  out << "eff_bw_factor = " << num(m.interconnect.eff_bw_factor) << "\n";
  out << "base_latency_us = " << num(m.interconnect.base_latency_s * 1e6)
      << "\n";
  out << "per_hop_latency_us = "
      << num(m.interconnect.per_hop_latency_s * 1e6) << "\n";
  out << "eager_threshold = " << m.interconnect.eager_threshold << "\n";
  out << "rendezvous_latency_us = "
      << num(m.interconnect.rendezvous_latency_s * 1e6) << "\n";
  out << "hop_bw_penalty = " << num(m.interconnect.hop_bw_penalty) << "\n";
  out << "long_dim_bw_penalty = " << num(m.interconnect.long_dim_bw_penalty)
      << "\n";
}

std::string machine_to_string(const MachineModel& machine) {
  std::ostringstream os;
  write_machine(os, machine);
  return os.str();
}

void save_machine_file(const std::string& path, const MachineModel& machine) {
  std::ofstream out(path);
  if (!out) throw MachineParseError("cannot open machine file " + path);
  write_machine(out, machine);
}

}  // namespace ctesim::arch
