// Semantic validation of machine models: catches nonsensical user-defined
// machines (from machine files or code) before they produce NaNs or
// contract violations deep inside a simulation.
#pragma once

#include <string>
#include <vector>

#include "arch/machine.h"

namespace ctesim::arch {

/// All problems found with `machine`, as human-readable messages prefixed
/// by the offending field path (empty vector = valid).
std::vector<std::string> validate(const MachineModel& machine);

/// Throws std::invalid_argument listing every problem if any.
void validate_or_throw(const MachineModel& machine);

}  // namespace ctesim::arch
