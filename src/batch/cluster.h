// The cluster-throughput simulation: a job stream, a queue policy and a
// placement policy, run to completion on the discrete-event engine.
//
// Arrival events push jobs into the JobQueue; every arrival and completion
// re-runs the start loop, which lets the queue start jobs, takes node
// blocks from sched::Allocator under the configured placement policy, and
// schedules each job's completion at its modeled (placement-dependent)
// runtime, capped by the wall-time limit. Fragmentation is sampled at every
// state change, giving the free-space timeline the metrics summarize.
#pragma once

#include <cstdint>
#include <vector>

#include "batch/job.h"
#include "batch/queue.h"
#include "batch/runtime.h"
#include "sched/allocator.h"

namespace ctesim::trace {
class Recorder;
}

namespace ctesim::batch {

struct ClusterOptions {
  sched::Policy placement = sched::Policy::kContiguous;
  QueuePolicy queue = QueuePolicy::kEasyBackfill;
  std::uint64_t seed = 1;  ///< placement seed stream (random policy)
  /// When set, the run streams observability events into this recorder:
  /// per-job "queued"/"run" spans and submit/finish/killed instants on
  /// trace::Track::job(id), plus queue_depth / busy_nodes / utilization /
  /// fragmentation counters on the global track (category "batch"). Export
  /// with trace::write_chrome_trace. Must outlive run_cluster().
  trace::Recorder* recorder = nullptr;
};

/// Machine state right after a job started or finished.
struct FragSample {
  double time_s = 0.0;
  double fragmentation = 0.0;  ///< sched::Allocator::fragmentation()
  int busy_nodes = 0;
};

struct ClusterResult {
  std::vector<JobRecord> records;         ///< one per job, by job id order
  std::vector<FragSample> frag_timeline;  ///< event-driven samples
  double makespan_s = 0.0;  ///< first arrival to last completion
};

/// Simulate the full stream. Deterministic: identical (model, jobs,
/// options) produces an identical result on every platform.
ClusterResult run_cluster(const RuntimeModel& model,
                          const std::vector<Job>& jobs,
                          const ClusterOptions& options);

}  // namespace ctesim::batch
