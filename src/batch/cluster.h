// The cluster-throughput simulation: a job stream, a queue policy and a
// placement policy, run to completion on the discrete-event engine.
//
// Arrival events push jobs into the JobQueue; every arrival and completion
// re-runs the start loop, which lets the queue start jobs, takes node
// blocks from sched::Allocator under the configured placement policy, and
// schedules each job's completion at its modeled (placement-dependent)
// runtime, capped by the wall-time limit. Fragmentation is sampled at every
// state change, giving the free-space timeline the metrics summarize.
//
// With a fault timeline the run becomes self-healing: failed nodes are
// drained from the allocator (and returned on repair), a job that loses a
// node is interrupted, restarts from its last checkpoint (see
// fault/checkpoint.h) and is requeued with a retry limit and backoff;
// degradation windows slow the communication share of affected jobs while
// they last. Everything stays deterministic: identical inputs (including
// the fault script) replay identically, byte for byte in the trace.
#pragma once

#include <cstdint>
#include <vector>

#include "batch/job.h"
#include "batch/queue.h"
#include "batch/runtime.h"
#include "fault/checkpoint.h"
#include "fault/fault.h"
#include "power/power_model.h"
#include "sched/allocator.h"

namespace ctesim::trace {
class Recorder;
}

namespace ctesim::batch {

struct ClusterOptions {
  sched::Policy placement = sched::Policy::kContiguous;
  QueuePolicy queue = QueuePolicy::kEasyBackfill;
  std::uint64_t seed = 1;  ///< placement seed stream (random policy)
  /// When set, the run streams observability events into this recorder:
  /// per-job "queued"/"run" spans and submit/finish/killed/node_failure
  /// instants on trace::Track::job(id), per-node "down" spans on
  /// trace::Track::node(n), plus queue_depth / busy_nodes / utilization /
  /// fragmentation / down_nodes / wasted_work counters on the global
  /// track. Export with trace::write_chrome_trace. Must outlive
  /// run_cluster().
  trace::Recorder* recorder = nullptr;

  // --- resilience ---------------------------------------------------------
  /// Operational fault script (failures, repairs, degradation windows);
  /// nullptr = the fault-free machine of the plain throughput study. Must
  /// outlive run_cluster() and validate() cleanly for the machine size.
  const fault::FaultTimeline* faults = nullptr;
  /// Checkpoint/restart policy applied to every job (disabled by default).
  fault::CheckpointPolicy checkpoint;
  /// Requeues a job interrupted by node failures may consume before it is
  /// abandoned with EndReason::kNodeFailure.
  int max_retries = 3;
  /// Delay before an interrupted job re-enters the queue, seconds.
  double requeue_backoff_s = 10.0;

  // --- power & energy -----------------------------------------------------
  /// Power coefficients for the machine; nullptr = energy accounting off,
  /// and every result (metrics, trace) is byte-identical to a power-less
  /// run. Must outlive run_cluster(); validated on entry.
  const power::PowerModel* power = nullptr;
  /// Operating point every job runs at (the cluster-wide DVFS setting).
  /// The default is the nominal no-op; downclocked states stretch each
  /// job's modeled runtime through RuntimeModel and shrink its core power.
  power::DvfsState dvfs;
  /// Cluster-wide power cap in watts, enforced at allocation time: a job
  /// whose estimated draw would push the cluster total past the cap does
  /// not start, even if nodes are free. 0 = uncapped. Requires `power`.
  double power_cap_w = 0.0;
  /// With a cap: let a power-blocked start (the head or a backfill
  /// candidate) proceed anyway at the shallowest DVFS state whose draw
  /// fits under the cap, trading the job's own runtime for queue time.
  bool dvfs_backfill = false;
};

/// Machine state right after a job started or finished, or a fault event.
struct FragSample {
  double time_s = 0.0;
  double fragmentation = 0.0;  ///< sched::Allocator::fragmentation()
  int busy_nodes = 0;
  int down_nodes = 0;  ///< drained (failed) nodes at this instant
  double power_w = 0.0;  ///< cluster draw at this instant (0: power off)
};

/// Cluster-wide energy accounting, piecewise-constant-integrated over the
/// run's event timeline. Components sum to total_j by construction.
struct EnergyTotals {
  double cpu_j = 0.0;     ///< running jobs' core + uncore + base energy
  double mem_j = 0.0;     ///< traffic-proportional DRAM/HBM energy
  double net_j = 0.0;     ///< comm-share link energy
  double idle_j = 0.0;    ///< in-service unallocated nodes at idle draw
  double total_j = 0.0;   ///< cpu + mem + net + idle
  /// Share of total_j burned without result (wall-time-killed attempts,
  /// unpreserved work of interrupted attempts) — already inside the
  /// component sums, not in addition to them.
  double wasted_j = 0.0;
  double peak_w = 0.0;    ///< max cluster draw over the timeline
  int capped_starts = 0;  ///< start attempts deferred by the power cap
  int downclocked_jobs = 0;  ///< backfills started below nominal frequency
};

struct ClusterResult {
  std::vector<JobRecord> records;         ///< one per job, by job id order
  std::vector<FragSample> frag_timeline;  ///< event-driven samples
  double makespan_s = 0.0;  ///< first arrival to last completion
  /// Discrete events the engine dispatched for this run — the denominator
  /// of the events/sec figure bench/engine_rate tracks (ROADMAP item 1).
  std::uint64_t engine_events = 0;
  bool has_power = false;  ///< energy layer was on (options.power set)
  EnergyTotals energy;     ///< all zero unless has_power
};

/// Simulate the full stream. Deterministic: identical (model, jobs,
/// options) produces an identical result on every platform.
ClusterResult run_cluster(const RuntimeModel& model,
                          const std::vector<Job>& jobs,
                          const ClusterOptions& options);

}  // namespace ctesim::batch
