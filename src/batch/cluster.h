// The cluster-throughput simulation: a job stream, a queue policy and a
// placement policy, run to completion on the discrete-event engine.
//
// Arrival events push jobs into the JobQueue; every arrival and completion
// re-runs the start loop, which lets the queue start jobs, takes node
// blocks from sched::Allocator under the configured placement policy, and
// schedules each job's completion at its modeled (placement-dependent)
// runtime, capped by the wall-time limit. Fragmentation is sampled at every
// state change, giving the free-space timeline the metrics summarize.
//
// With a fault timeline the run becomes self-healing: failed nodes are
// drained from the allocator (and returned on repair), a job that loses a
// node is interrupted, restarts from its last checkpoint (see
// fault/checkpoint.h) and is requeued with a retry limit and backoff;
// degradation windows slow the communication share of affected jobs while
// they last. Everything stays deterministic: identical inputs (including
// the fault script) replay identically, byte for byte in the trace.
#pragma once

#include <cstdint>
#include <vector>

#include "batch/job.h"
#include "batch/queue.h"
#include "batch/runtime.h"
#include "fault/checkpoint.h"
#include "fault/fault.h"
#include "sched/allocator.h"

namespace ctesim::trace {
class Recorder;
}

namespace ctesim::batch {

struct ClusterOptions {
  sched::Policy placement = sched::Policy::kContiguous;
  QueuePolicy queue = QueuePolicy::kEasyBackfill;
  std::uint64_t seed = 1;  ///< placement seed stream (random policy)
  /// When set, the run streams observability events into this recorder:
  /// per-job "queued"/"run" spans and submit/finish/killed/node_failure
  /// instants on trace::Track::job(id), per-node "down" spans on
  /// trace::Track::node(n), plus queue_depth / busy_nodes / utilization /
  /// fragmentation / down_nodes / wasted_work counters on the global
  /// track. Export with trace::write_chrome_trace. Must outlive
  /// run_cluster().
  trace::Recorder* recorder = nullptr;

  // --- resilience ---------------------------------------------------------
  /// Operational fault script (failures, repairs, degradation windows);
  /// nullptr = the fault-free machine of the plain throughput study. Must
  /// outlive run_cluster() and validate() cleanly for the machine size.
  const fault::FaultTimeline* faults = nullptr;
  /// Checkpoint/restart policy applied to every job (disabled by default).
  fault::CheckpointPolicy checkpoint;
  /// Requeues a job interrupted by node failures may consume before it is
  /// abandoned with EndReason::kNodeFailure.
  int max_retries = 3;
  /// Delay before an interrupted job re-enters the queue, seconds.
  double requeue_backoff_s = 10.0;
};

/// Machine state right after a job started or finished, or a fault event.
struct FragSample {
  double time_s = 0.0;
  double fragmentation = 0.0;  ///< sched::Allocator::fragmentation()
  int busy_nodes = 0;
  int down_nodes = 0;  ///< drained (failed) nodes at this instant
};

struct ClusterResult {
  std::vector<JobRecord> records;         ///< one per job, by job id order
  std::vector<FragSample> frag_timeline;  ///< event-driven samples
  double makespan_s = 0.0;  ///< first arrival to last completion
  /// Discrete events the engine dispatched for this run — the denominator
  /// of the events/sec figure bench/engine_rate tracks (ROADMAP item 1).
  std::uint64_t engine_events = 0;
};

/// Simulate the full stream. Deterministic: identical (model, jobs,
/// options) produces an identical result on every platform.
ClusterResult run_cluster(const RuntimeModel& model,
                          const std::vector<Job>& jobs,
                          const ClusterOptions& options);

}  // namespace ctesim::batch
