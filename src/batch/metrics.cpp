#include "batch/metrics.h"

#include <algorithm>

#include "util/check.h"
#include "util/stats.h"

namespace ctesim::batch {

const char* name_of(EndReason reason) {
  switch (reason) {
    case EndReason::kCompleted:
      return "completed";
    case EndReason::kWalltimeKilled:
      return "walltime_killed";
    case EndReason::kNodeFailure:
      return "node_failure";
  }
  return "?";
}

ClusterMetrics summarize(const ClusterResult& result, int total_nodes,
                         double tau_s) {
  CTESIM_EXPECTS(total_nodes >= 1);
  ClusterMetrics m;
  m.jobs = static_cast<int>(result.records.size());
  m.makespan_s = result.makespan_s;
  if (result.records.empty()) return m;

  double busy_node_s = 0.0;
  double useful_node_s = 0.0;
  double wasted_node_s = 0.0;
  double attempts = 0.0;
  std::vector<double> waits, slowdowns;
  waits.reserve(result.records.size());
  slowdowns.reserve(result.records.size());
  RunningStats hops, placement;
  for (const JobRecord& r : result.records) {
    if (r.end_reason == EndReason::kWalltimeKilled) ++m.killed;
    if (r.end_reason == EndReason::kNodeFailure) ++m.failed;
    if (r.interruptions > 0) ++m.interrupted;
    attempts += r.attempts;
    if (r.busy_node_s > 0.0) {
      busy_node_s += r.busy_node_s;
      useful_node_s += r.useful_node_s;
      wasted_node_s += r.wasted_node_s;
    } else {
      // Legacy / hand-built record with no resilience accounting: the one
      // recorded run is the busy time, useful iff it completed.
      const double node_s = static_cast<double>(r.job.nodes) * r.runtime_s();
      busy_node_s += node_s;
      if (r.end_reason == EndReason::kCompleted) {
        useful_node_s += node_s;
      } else {
        wasted_node_s += node_s;
      }
    }
    waits.push_back(r.wait_s());
    slowdowns.push_back(r.bounded_slowdown(tau_s));
    hops.add(r.mean_hops);
    placement.add(r.placement_slowdown);
  }
  m.mean_attempts = attempts / static_cast<double>(result.records.size());
  m.wasted_node_h = wasted_node_s / 3600.0;
  if (m.makespan_s > 0.0) {
    m.utilization = busy_node_s / (total_nodes * m.makespan_s);
    m.goodput = useful_node_s / (total_nodes * m.makespan_s);
  }
  RunningStats wait_stats, sld_stats;
  for (double w : waits) wait_stats.add(w);
  for (double s : slowdowns) sld_stats.add(s);
  m.mean_wait_s = wait_stats.mean();
  m.p95_wait_s = p95(waits);
  m.p99_wait_s = p99(waits);
  m.mean_bounded_slowdown = sld_stats.mean();
  m.p95_bounded_slowdown = p95(slowdowns);
  m.p99_bounded_slowdown = p99(slowdowns);
  m.mean_hops = hops.mean();
  m.mean_placement_slowdown = placement.mean();

  // Piecewise-constant time averages: each sample holds until the next.
  const auto& frag = result.frag_timeline;
  if (frag.size() >= 2) {
    double frag_integral = 0.0;
    double down_integral = 0.0;
    for (std::size_t i = 0; i + 1 < frag.size(); ++i) {
      const double dt = frag[i + 1].time_s - frag[i].time_s;
      frag_integral += frag[i].fragmentation * dt;
      down_integral += frag[i].down_nodes * dt;
    }
    const double span = frag.back().time_s - frag.front().time_s;
    if (span > 0.0) {
      m.time_avg_fragmentation = frag_integral / span;
      m.availability = 1.0 - down_integral / (span * total_nodes);
    }
  }

  if (result.has_power) {
    const EnergyTotals& e = result.energy;
    m.energy_to_solution_j = e.total_j;
    m.edp_js = e.total_j * m.makespan_s;
    if (m.makespan_s > 0.0) m.mean_power_w = e.total_j / m.makespan_s;
    m.peak_power_w = e.peak_w;
    m.wasted_energy_j = e.wasted_j;
    m.cpu_energy_j = e.cpu_j;
    m.mem_energy_j = e.mem_j;
    m.net_energy_j = e.net_j;
    m.idle_energy_j = e.idle_j;
    m.capped_starts = e.capped_starts;
    m.downclocked_jobs = e.downclocked_jobs;
  }
  return m;
}

}  // namespace ctesim::batch
