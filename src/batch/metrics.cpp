#include "batch/metrics.h"

#include <algorithm>

#include "util/check.h"
#include "util/stats.h"

namespace ctesim::batch {

ClusterMetrics summarize(const ClusterResult& result, int total_nodes,
                         double tau_s) {
  CTESIM_EXPECTS(total_nodes >= 1);
  ClusterMetrics m;
  m.jobs = static_cast<int>(result.records.size());
  m.makespan_s = result.makespan_s;
  if (result.records.empty()) return m;

  double busy_node_s = 0.0;
  std::vector<double> waits, slowdowns;
  waits.reserve(result.records.size());
  slowdowns.reserve(result.records.size());
  RunningStats hops, placement;
  for (const JobRecord& r : result.records) {
    if (r.end_reason == EndReason::kWalltimeKilled) ++m.killed;
    busy_node_s += static_cast<double>(r.job.nodes) * r.runtime_s();
    waits.push_back(r.wait_s());
    slowdowns.push_back(r.bounded_slowdown(tau_s));
    hops.add(r.mean_hops);
    placement.add(r.placement_slowdown);
  }
  if (m.makespan_s > 0.0) {
    m.utilization = busy_node_s / (total_nodes * m.makespan_s);
  }
  RunningStats wait_stats, sld_stats;
  for (double w : waits) wait_stats.add(w);
  for (double s : slowdowns) sld_stats.add(s);
  m.mean_wait_s = wait_stats.mean();
  m.p95_wait_s = p95(waits);
  m.p99_wait_s = p99(waits);
  m.mean_bounded_slowdown = sld_stats.mean();
  m.p95_bounded_slowdown = p95(slowdowns);
  m.p99_bounded_slowdown = p99(slowdowns);
  m.mean_hops = hops.mean();
  m.mean_placement_slowdown = placement.mean();

  // Piecewise-constant time average: each sample holds until the next.
  const auto& frag = result.frag_timeline;
  if (frag.size() >= 2) {
    double integral = 0.0;
    for (std::size_t i = 0; i + 1 < frag.size(); ++i) {
      integral += frag[i].fragmentation *
                  (frag[i + 1].time_s - frag[i].time_s);
    }
    const double span = frag.back().time_s - frag.front().time_s;
    if (span > 0.0) m.time_avg_fragmentation = integral / span;
  }
  return m;
}

}  // namespace ctesim::batch
