// Batch jobs: what a user submits to the CTE-Arm queue.
//
// The paper evaluates a *production* system — its scheduler allocates
// topology-aware node blocks to a stream of competing jobs (Section II) —
// but the rest of ctesim runs one workload at a time. The batch subsystem
// models the queue: a Job is a node count + wall-time request + an
// application profile naming which kernel the job spends its time in, and a
// JobRecord is what the simulated cluster did with it.
#pragma once

#include <cstdint>
#include <vector>

#include "roofline/kernel.h"

namespace ctesim::batch {

/// What a job computes: a kernel signature plus weak-scaled per-node work.
/// `comm_fraction` is the share of the job's runtime spent communicating
/// when it gets a compact allocation; scattered placements inflate exactly
/// that share (see RuntimeModel).
struct JobProfile {
  const char* name = "generic";
  roofline::KernelSig sig;
  double elems_per_node = 0.0;  ///< elements each node sweeps per iteration
  int iterations = 1;
  double comm_fraction = 0.0;  ///< [0,1): placement-sensitive runtime share
};

struct Job {
  int id = 0;
  double arrival_s = 0.0;
  int nodes = 1;
  double walltime_s = 0.0;  ///< user-requested limit; exceeded => killed
  /// Explicit runtime (seconds) for trace replay and hand-checked tests;
  /// <= 0 means "derive from profile via RuntimeModel".
  double fixed_runtime_s = 0.0;
  JobProfile profile;
};

enum class EndReason {
  kCompleted,
  kWalltimeKilled,  ///< hit the requested limit before finishing
  kNodeFailure,     ///< lost a node and exhausted its requeue budget
};

const char* name_of(EndReason reason);

/// Per-job outcome, filled by run_cluster(). With the resilience layer a
/// job may run several attempts (interrupted by node failures, requeued,
/// restarted from its last checkpoint); start/end and the placement fields
/// describe the FINAL attempt, the resilience fields aggregate all of them.
struct JobRecord {
  Job job;
  double start_s = 0.0;
  double end_s = 0.0;
  std::vector<int> alloc_nodes;   ///< nodes the allocator picked
  double mean_hops = 0.0;         ///< scatter of the allocation
  double placement_slowdown = 1.0;  ///< runtime factor from scatter
  EndReason end_reason = EndReason::kCompleted;

  // --- resilience accounting (all attempts) -------------------------------
  int attempts = 1;            ///< attempts started (0: never got to run)
  int interruptions = 0;       ///< attempts cut short by node failures
  double first_start_s = 0.0;  ///< start of the first attempt
  /// Node-seconds the job held over every attempt (busy time).
  double busy_node_s = 0.0;
  /// Node-seconds of work that counted: checkpoint-preserved work of
  /// interrupted attempts plus the final completed attempt's work.
  double useful_node_s = 0.0;
  /// Node-seconds lost: unpreserved work and overheads of interrupted
  /// attempts, the whole of a wall-time-killed attempt.
  double wasted_node_s = 0.0;

  // --- energy accounting (zero unless ClusterOptions::power is set) -------
  /// Joules this job drew over every attempt (CPU + memory + network).
  double energy_j = 0.0;
  /// Joules burned without result: the unpreserved share of interrupted
  /// attempts plus whole wall-time-killed attempts.
  double wasted_energy_j = 0.0;
  /// Frequency scale the final attempt ran at (< 1: the power-aware
  /// scheduler downclocked this job to fit under the cluster power cap).
  double dvfs_freq_scale = 1.0;

  /// Floored at 0: sub-picosecond engine rounding must not produce -0.0.
  double wait_s() const {
    const double w = start_s - job.arrival_s;
    return w > 0.0 ? w : 0.0;
  }
  double runtime_s() const { return end_s - start_s; }

  /// Bounded slowdown: (wait + run) / max(run, tau), floored at 1. The
  /// standard queueing metric — tau stops sub-second jobs from dominating.
  double bounded_slowdown(double tau_s = 10.0) const {
    const double run = runtime_s();
    const double denom = run > tau_s ? run : tau_s;
    const double sld = (wait_s() + run) / denom;
    return sld > 1.0 ? sld : 1.0;
  }
};

}  // namespace ctesim::batch
