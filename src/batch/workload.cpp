#include "batch/workload.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "roofline/kernel_library.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/rng.h"

namespace ctesim::batch {

namespace {

std::vector<JobProfile> build_library() {
  namespace rk = roofline::kernels;
  // comm_fraction reflects how each kernel class communicates: spectral
  // transforms transpose globally (most placement-sensitive), iterative
  // solvers halo-exchange every sweep, column physics barely talks.
  return {
      {"stencil", rk::stencil3d(), 4e7, 1, 0.25},
      {"spmv", rk::spmv_csr(), 3e7, 1, 0.35},
      {"fem", rk::fem_assembly(), 2e6, 1, 0.15},
      {"md", rk::md_nonbonded(), 5e6, 1, 0.20},
      {"spectral", rk::spectral_transform(), 2e7, 1, 0.45},
      {"physics", rk::physics_column(), 1e6, 1, 0.05},
  };
}

double exponential(Rng& rng, double mean) {
  // uniform() < 1 exactly, so the log argument is always positive.
  return -mean * std::log(1.0 - rng.uniform());
}

}  // namespace

const std::vector<JobProfile>& profile_library() {
  static const std::vector<JobProfile> library = build_library();
  return library;
}

const JobProfile& profile_by_name(const std::string& name) {
  for (const auto& p : profile_library()) {
    if (name == p.name) return p;
  }
  throw std::runtime_error("batch: unknown job profile '" + name + "'");
}

std::vector<Job> generate(const WorkloadConfig& config,
                          const RuntimeModel& model, std::uint64_t seed) {
  CTESIM_EXPECTS(config.num_jobs >= 1);
  CTESIM_EXPECTS(config.mean_interarrival_s > 0.0);
  CTESIM_EXPECTS(config.burst_fraction >= 0.0 && config.burst_fraction < 1.0);
  CTESIM_EXPECTS(config.min_nodes >= 1 &&
                 config.min_nodes <= config.max_nodes);
  CTESIM_EXPECTS(config.max_nodes <= model.machine().num_nodes);
  CTESIM_EXPECTS(config.min_runtime_s > 0.0 &&
                 config.min_runtime_s <= config.max_runtime_s);
  CTESIM_EXPECTS(config.walltime_pad_min >= 1.0 &&
                 config.walltime_pad_min <= config.walltime_pad_max);

  Rng rng(seed);
  const auto& library = profile_library();
  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(config.num_jobs));
  double clock = 0.0;
  for (int i = 0; i < config.num_jobs; ++i) {
    Job job;
    job.id = i;
    // Arrival: exponential gap, except a burst_fraction of jobs lands
    // together with its predecessor (batch campaign submissions).
    const bool in_burst = i > 0 && rng.uniform() < config.burst_fraction;
    if (!in_burst) clock += exponential(rng, config.mean_interarrival_s);
    job.arrival_s = clock;

    // Size: log2-uniform node count.
    const double e =
        rng.uniform(std::log2(static_cast<double>(config.min_nodes)),
                    std::log2(static_cast<double>(config.max_nodes)));
    job.nodes =
        std::clamp(static_cast<int>(std::lround(std::exp2(e))),
                   config.min_nodes, config.max_nodes);

    job.profile = library[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(library.size()) - 1))];

    // Runtime: pick the iteration count landing nearest a log-uniform
    // target, so runtimes still flow through the roofline model.
    const double target = std::exp(rng.uniform(
        std::log(config.min_runtime_s), std::log(config.max_runtime_s)));
    Job probe = job;
    probe.profile.iterations = 1;
    const double per_iter = model.reference_runtime(probe);
    job.profile.iterations =
        std::max(1, static_cast<int>(std::lround(target / per_iter)));

    job.walltime_s =
        model.reference_runtime(job) *
        rng.uniform(config.walltime_pad_min, config.walltime_pad_max);
    jobs.push_back(job);
  }
  return jobs;
}

std::vector<Job> load_trace(const std::string& path) {
  CsvReader reader(path);
  for (const char* column :
       {"id", "arrival_s", "nodes", "walltime_s", "runtime_s", "profile"}) {
    if (!reader.has_column(column)) {
      throw std::runtime_error("batch: trace " + path + " lacks column " +
                               column);
    }
  }
  std::vector<Job> jobs;
  jobs.reserve(reader.rows());
  for (std::size_t r = 0; r < reader.rows(); ++r) {
    Job job;
    job.id = static_cast<int>(reader.number(r, "id"));
    job.arrival_s = reader.number(r, "arrival_s");
    job.nodes = static_cast<int>(reader.number(r, "nodes"));
    job.walltime_s = reader.number(r, "walltime_s");
    job.fixed_runtime_s = reader.number(r, "runtime_s");
    job.profile = profile_by_name(reader.cell(r, "profile"));
    if (job.fixed_runtime_s <= 0.0) {
      throw std::runtime_error("batch: trace rows need runtime_s > 0");
    }
    if (job.nodes < 1 || job.walltime_s <= 0.0 || job.arrival_s < 0.0) {
      throw std::runtime_error("batch: malformed trace row in " + path);
    }
    jobs.push_back(job);
  }
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const Job& a, const Job& b) {
                     return a.arrival_s < b.arrival_s;
                   });
  return jobs;
}

void write_trace(const std::vector<Job>& jobs, const RuntimeModel& model,
                 const std::string& path) {
  CsvWriter writer(path, {"id", "arrival_s", "nodes", "walltime_s",
                          "runtime_s", "profile"});
  for (const Job& job : jobs) {
    const double runtime = job.fixed_runtime_s > 0.0
                               ? job.fixed_runtime_s
                               : model.reference_runtime(job);
    char arrival[64], walltime[64], run[64];
    std::snprintf(arrival, sizeof(arrival), "%.9g", job.arrival_s);
    std::snprintf(walltime, sizeof(walltime), "%.9g", job.walltime_s);
    std::snprintf(run, sizeof(run), "%.9g", runtime);
    writer.row(std::vector<std::string>{
        std::to_string(job.id), arrival, std::to_string(job.nodes), walltime,
        run, job.profile.name});
  }
}

}  // namespace ctesim::batch
