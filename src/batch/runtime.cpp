#include "batch/runtime.h"

#include <algorithm>
#include <vector>

#include "arch/configs.h"
#include "simmpi/placement.h"
#include "util/check.h"
#include "util/hash.h"

namespace ctesim::batch {

RuntimeModel::RuntimeModel(const arch::MachineModel& machine)
    : machine_(machine),
      topology_(machine.interconnect.dims),
      exec_(machine.node, arch::default_app_compiler(machine)) {
  CTESIM_EXPECTS(machine.interconnect.kind ==
                 arch::InterconnectSpec::Kind::kTorus);
  CTESIM_EXPECTS(topology_.num_nodes() == machine.num_nodes);
}

const roofline::ExecModel& RuntimeModel::exec_at(double freq_scale) const {
  // 1.0 (and anything above: states are downclocks) is the base model —
  // exact, not a freshly built copy, so DVFS-off runs are bit-identical.
  if (freq_scale >= 1.0) return exec_;
  CTESIM_EXPECTS(freq_scale > 0.0);
  const auto it = dvfs_exec_cache_.find(freq_scale);
  if (it != dvfs_exec_cache_.end()) return it->second;
  // Core DVFS scales the clock (and with it peak FLOP rate and L1/L2
  // bandwidth derived from it); HBM bandwidth is on its own domain and
  // does not move — that asymmetry is the whole DVFS story (compute-bound
  // stretches, memory-bound does not).
  arch::NodeModel scaled = machine_.node;
  scaled.core.freq_ghz *= freq_scale;
  const auto [pos, inserted] = dvfs_exec_cache_.emplace(
      freq_scale,
      roofline::ExecModel(scaled, arch::default_app_compiler(machine_)));
  CTESIM_EXPECTS(inserted);
  return pos->second;
}

double RuntimeModel::base_runtime(const Job& job, double freq_scale) const {
  if (job.fixed_runtime_s > 0.0) return job.fixed_runtime_s;
  const JobProfile& p = job.profile;
  CTESIM_EXPECTS(p.elems_per_node > 0.0 && p.iterations >= 1);
  CTESIM_EXPECTS(p.comm_fraction >= 0.0 && p.comm_fraction < 1.0);
  // One aggregated rank per node owning every core (the same per-node
  // granularity the large-scale app sweeps use); weak scaling, so per-node
  // work is independent of job size.
  const auto placement =
      mpi::Placement::per_node(machine_.node, job.nodes);
  const units::Seconds t_iter =
      exec_at(freq_scale).time(p.sig, p.elems_per_node,
                               placement.slot(0).cores);
  // comm_fraction is the communication share at the compact reference, so
  // compute is the (1 - f) remainder of the total.
  return (p.iterations * t_iter / (1.0 - p.comm_fraction)).value();
}

double RuntimeModel::reference_runtime(const Job& job,
                                       double freq_scale) const {
  return base_runtime(job, freq_scale);
}

double RuntimeModel::traffic_bytes_per_node(const Job& job) const {
  if (job.fixed_runtime_s > 0.0) return 0.0;
  const JobProfile& p = job.profile;
  return p.elems_per_node * p.sig.bytes_per_elem * p.iterations;
}

double RuntimeModel::slowdown(const Job& job, double hops) const {
  const double f = job.profile.comm_fraction;
  if (f <= 0.0 || job.nodes < 2) return 1.0;
  const double ref = std::max(reference_hops(job.nodes), 1.0);
  return std::max(1.0, 1.0 + f * (hops / ref - 1.0));
}

double RuntimeModel::runtime(const Job& job, double hops,
                             double freq_scale) const {
  return base_runtime(job, freq_scale) * slowdown(job, hops);
}

sampling::Outcome RuntimeModel::sampled_runtime(
    const Job& job, double hops, const sampling::SamplingPlan& plan,
    double freq_scale) const {
  const long long iters =
      job.fixed_runtime_s > 0.0
          ? 1
          : static_cast<long long>(job.profile.iterations);
  const double t_step = runtime(job, hops, freq_scale) /
                        static_cast<double>(iters);
  // Random-access jitter stream: step s of job j costs the same whether it
  // is reached in a full run or jumped to by a sampled plan.
  const std::uint64_t stream = hash_combine(
      hash_combine(kFnvOffsetBasis, 0x6a6f6273ULL),
      static_cast<std::uint64_t>(job.id));
  const auto step_cost = [&](long long s) {
    const std::uint64_t h =
        hash_combine(stream, static_cast<std::uint64_t>(s));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return t_step * (1.0 + kStepJitter * (2.0 * u - 1.0));
  };

  sampling::StepProfile profile;
  profile.total_steps = iters;
  profile.exact_window = iters;  // exact plans replay every iteration

  const auto runner = [&](const std::vector<long long>& steps,
                          bool want_per_step) {
    sampling::StepRunResult res;
    res.accum.assign(1, 0.0);
    if (want_per_step) res.per_rank_step.assign(1, {});
    for (std::size_t i = 0; i < steps.size(); ++i) {
      const double dt = step_cost(steps[i]);
      res.accum[0] += dt;
      if (want_per_step) res.per_rank_step[0].push_back({dt});
      res.makespan_s += dt;
    }
    return res;
  };
  return sampling::run_plan(profile, plan, runner);
}

double RuntimeModel::reference_hops(int nodes) const {
  CTESIM_EXPECTS(nodes >= 1 && nodes <= topology_.num_nodes());
  if (nodes < 2) return 0.0;
  const auto it = ref_hops_cache_.find(nodes);
  if (it != ref_hops_cache_.end()) return it->second;
  // Measure the compact optimum by asking the allocator itself on an empty
  // machine — keeps the reference consistent with what kContiguous can do.
  sched::Allocator scratch(topology_);
  const auto block = scratch.allocate(nodes, sched::Policy::kContiguous);
  const double hops = scratch.mean_pairwise_hops(block);
  ref_hops_cache_[nodes] = hops;
  return hops;
}

}  // namespace ctesim::batch
