// Batch queue policies: FCFS and EASY backfill.
//
// The queue decides *when* a job may start; node *placement* stays with
// sched::Allocator. EASY backfill (Lifka '95, the policy CTE-Arm's PJM-like
// production schedulers run) lets small jobs jump ahead as long as they
// cannot delay the head-of-queue job's reservation, computed from the
// running jobs' wall-time limits — the scheduler never knows actual
// runtimes in advance.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "batch/job.h"

namespace ctesim::batch {

enum class QueuePolicy {
  kFcfs,          ///< strict arrival order; head blocks everything behind it
  kEasyBackfill,  ///< aggressive backfill with a head-of-queue reservation
};

const char* name_of(QueuePolicy policy);

/// A running job's claim as the queue planner sees it.
struct Reservation {
  int job_id = 0;
  double predicted_end_s = 0.0;  ///< start + wall-time request
  int nodes = 0;
};

class JobQueue {
 public:
  JobQueue(QueuePolicy policy, int total_nodes);

  /// Enqueue in arrival order. The job must fit the machine at all.
  void push(const Job& job);

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }
  const Job& head() const;

  /// Queue position of the next job allowed to start now, or -1.
  /// FCFS: the head iff `free_nodes` suffice. EASY: the head iff it fits;
  /// otherwise the first later job that both fits now and cannot delay the
  /// head (finishes by the shadow time, or only uses nodes the head won't
  /// need then).
  int next_startable(double now_s, int free_nodes,
                     const std::vector<Reservation>& running) const;

  /// Earliest time the head could start if every running job ran to its
  /// wall-time limit (the EASY reservation). Exposed for tests; requires a
  /// non-empty queue. Returns now_s when the head already fits.
  double shadow_time(double now_s, int free_nodes,
                     const std::vector<Reservation>& running) const;

  /// The job at `position` (from next_startable), without removing it —
  /// the power-aware scheduler peeks before committing nodes and power.
  const Job& at(int position) const;

  /// Remove and return the job at `position` (from next_startable).
  Job pop(int position);

 private:
  QueuePolicy policy_;
  int total_nodes_;
  std::deque<Job> queue_;
};

}  // namespace ctesim::batch
