// Workload generation for the batch subsystem: synthetic job streams
// (Poisson or bursty arrivals, log-uniform job sizes and runtimes, padded
// wall-time requests — the standard knobs of parallel-workload models) and
// CSV trace replay for feeding recorded queues back through the simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "batch/job.h"
#include "batch/runtime.h"

namespace ctesim::batch {

struct WorkloadConfig {
  int num_jobs = 500;
  /// Mean of the exponential inter-arrival gap (Poisson process).
  double mean_interarrival_s = 8.0;
  /// Fraction of jobs that arrive glued to their predecessor (campaign
  /// submissions); 0 gives a pure Poisson stream.
  double burst_fraction = 0.0;
  /// Node counts are log2-uniform in [min_nodes, max_nodes] — many small
  /// jobs, few large ones, like a real queue.
  int min_nodes = 1;
  int max_nodes = 32;
  /// Target runtimes are log-uniform in [min_runtime_s, max_runtime_s];
  /// the generator picks the iteration count that lands closest.
  double min_runtime_s = 60.0;
  double max_runtime_s = 900.0;
  /// Wall-time requests overshoot the expected runtime by a uniform factor
  /// in [pad_min, pad_max] — users pad their estimates.
  double walltime_pad_min = 1.2;
  double walltime_pad_max = 3.0;
};

/// The application profiles synthetic jobs draw from (stencil, SpMV,
/// FEM assembly, MD, spectral transform, column physics — the paper's
/// application mix expressed as kernel classes).
const std::vector<JobProfile>& profile_library();

/// Profile by name; throws std::runtime_error if unknown.
const JobProfile& profile_by_name(const std::string& name);

/// Generate `config.num_jobs` jobs, arrivals sorted ascending. Identical
/// (config, model, seed) gives an identical stream on every platform.
std::vector<Job> generate(const WorkloadConfig& config,
                          const RuntimeModel& model, std::uint64_t seed);

/// Replay a recorded trace. Schema (header required):
///   id,arrival_s,nodes,walltime_s,runtime_s,profile
/// `runtime_s` must be > 0 (traces carry measured runtimes); `profile`
/// names a library profile and supplies the communication sensitivity.
std::vector<Job> load_trace(const std::string& path);

/// Write jobs in the load_trace schema (round-trips with load_trace for
/// fixed-runtime jobs).
void write_trace(const std::vector<Job>& jobs, const RuntimeModel& model,
                 const std::string& path);

}  // namespace ctesim::batch
