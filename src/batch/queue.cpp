#include "batch/queue.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace ctesim::batch {

const char* name_of(QueuePolicy policy) {
  switch (policy) {
    case QueuePolicy::kFcfs:
      return "fcfs";
    case QueuePolicy::kEasyBackfill:
      return "easy";
  }
  return "?";
}

JobQueue::JobQueue(QueuePolicy policy, int total_nodes)
    : policy_(policy), total_nodes_(total_nodes) {
  CTESIM_EXPECTS(total_nodes >= 1);
}

void JobQueue::push(const Job& job) {
  CTESIM_EXPECTS(job.nodes >= 1 && job.nodes <= total_nodes_);
  CTESIM_EXPECTS(job.walltime_s > 0.0);
  queue_.push_back(job);
}

const Job& JobQueue::head() const {
  CTESIM_EXPECTS(!queue_.empty());
  return queue_.front();
}

double JobQueue::shadow_time(double now_s, int free_nodes,
                             const std::vector<Reservation>& running) const {
  CTESIM_EXPECTS(!queue_.empty());
  const int needed = queue_.front().nodes;
  if (needed <= free_nodes) return now_s;
  // Walk predicted releases in end order until the head fits.
  std::vector<Reservation> ends(running);
  std::sort(ends.begin(), ends.end(),
            [](const Reservation& a, const Reservation& b) {
              return a.predicted_end_s < b.predicted_end_s;
            });
  int free = free_nodes;
  for (const Reservation& r : ends) {
    free += r.nodes;
    if (free >= needed) return std::max(now_s, r.predicted_end_s);
  }
  // Unreachable on a dedicated machine (free + running == total >= needed),
  // but keep the planner total: the head then never backfill-blocks.
  return std::numeric_limits<double>::infinity();
}

int JobQueue::next_startable(double now_s, int free_nodes,
                             const std::vector<Reservation>& running) const {
  if (queue_.empty()) return -1;
  if (queue_.front().nodes <= free_nodes) return 0;
  if (policy_ == QueuePolicy::kFcfs) return -1;

  // EASY: reserve the head at its shadow time, then let later jobs start
  // only if they cannot push that reservation back.
  const double shadow = shadow_time(now_s, free_nodes, running);
  // Nodes free at the shadow instant once the head has taken its share —
  // a backfill job no wider than this can run *through* the shadow time
  // without touching the head's reservation.
  int free_at_shadow = free_nodes;
  for (const Reservation& r : running) {
    if (r.predicted_end_s <= shadow) free_at_shadow += r.nodes;
  }
  const int extra = free_at_shadow - queue_.front().nodes;

  for (std::size_t i = 1; i < queue_.size(); ++i) {
    const Job& job = queue_[i];
    if (job.nodes > free_nodes) continue;
    const bool ends_before_shadow = now_s + job.walltime_s <= shadow;
    if (ends_before_shadow || job.nodes <= extra) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

const Job& JobQueue::at(int position) const {
  CTESIM_EXPECTS(position >= 0 &&
                 position < static_cast<int>(queue_.size()));
  return queue_[static_cast<std::size_t>(position)];
}

Job JobQueue::pop(int position) {
  CTESIM_EXPECTS(position >= 0 &&
                 position < static_cast<int>(queue_.size()));
  const auto it = queue_.begin() + position;
  Job job = *it;
  queue_.erase(it);
  return job;
}

}  // namespace ctesim::batch
