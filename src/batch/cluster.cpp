#include "batch/cluster.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/time.h"
#include "fault/validate.h"
#include "io/filesystem.h"
#include "power/attribution.h"
#include "trace/recorder.h"
#include "util/check.h"
#include "util/log.h"

namespace ctesim::batch {

namespace {

/// Mix the run seed with the job id so the random placement policy draws an
/// independent, order-free stream per job (splitmix-style finalizer).
/// Retries fold the attempt number in, so a requeued job redraws its nodes.
std::uint64_t placement_seed(std::uint64_t seed, int job_id, int attempt) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL *
                               (static_cast<std::uint64_t>(job_id) + 1);
  z ^= 0x94d049bb133111ebULL * static_cast<std::uint64_t>(attempt);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Per-job state that survives across attempts (requeues).
struct JobState {
  int attempts_started = 0;
  int interruptions = 0;
  double done_fraction = 0.0;  ///< checkpoint-preserved share of the work
  double first_start_s = 0.0;
  bool ever_started = false;
  double busy_node_s = 0.0;
  double useful_node_s = 0.0;
  double wasted_node_s = 0.0;
  double energy_j = 0.0;         ///< all attempts (power layer on)
  double wasted_energy_j = 0.0;  ///< killed / unpreserved share of energy_j
};

/// One attempt of one job, currently holding nodes.
struct Attempt {
  Job job;
  std::vector<int> nodes;  ///< sorted by the allocator
  double mean_hops = 0.0;
  double placement_slowdown = 1.0;
  double start_s = 0.0;
  double full_runtime_s = 0.0;  ///< whole-job work on this placement
  double work_s = 0.0;          ///< pure work this attempt must complete
  double eff_required_s = 0.0;  ///< restart + work + checkpoint writes
  double eff_done_s = 0.0;      ///< progress on the attempt-duration clock
  double last_update_s = 0.0;   ///< sim time of the last progress accrual
  double rate = 1.0;  ///< progress per wall second (degradation slows it)
  bool restarting = false;
  fault::CheckpointCost ckpt;
  std::uint64_t epoch = 0;  ///< invalidates stale completion events
  /// Per-node power draw, constant for the attempt (power layer on).
  /// Degradation stretches the attempt in time but not in watts, so the
  /// cluster draw never rises after a start — the allocation-time cap
  /// check is sufficient on a fault-free machine.
  power::JobDraw draw;
  double freq_scale = 1.0;  ///< DVFS point this attempt runs at
};

}  // namespace

ClusterResult run_cluster(const RuntimeModel& model,
                          const std::vector<Job>& jobs,
                          const ClusterOptions& options) {
  const int total_nodes = model.machine().num_nodes;
  for (const Job& job : jobs) {
    CTESIM_EXPECTS(job.nodes >= 1 && job.nodes <= total_nodes);
    CTESIM_EXPECTS(job.arrival_s >= 0.0 && job.walltime_s > 0.0);
  }
  CTESIM_EXPECTS(options.max_retries >= 0);
  CTESIM_EXPECTS(options.requeue_backoff_s >= 0.0);
  fault::validate_or_throw(options.checkpoint);
  if (options.faults) options.faults->validate_or_throw(total_nodes);
  if (options.power) power::validate_or_throw(*options.power);
  CTESIM_EXPECTS(options.dvfs.freq_scale > 0.0 &&
                 options.dvfs.freq_scale <= 1.0);
  CTESIM_EXPECTS(options.power_cap_w >= 0.0);
  // A cap (and cap-driven downclocking) is meaningless without coefficients.
  CTESIM_EXPECTS(options.power_cap_w <= 0.0 || options.power != nullptr);
  CTESIM_EXPECTS(!options.dvfs_backfill || options.power != nullptr);

  sim::Engine engine;
  sched::Allocator allocator(model.topology());
  JobQueue queue(options.queue, total_nodes);
  const io::FilesystemModel fs = io::production_filesystem(model.machine());

  std::map<int, Attempt> running;        // job id -> live attempt
  std::map<int, JobState> job_states;    // job id -> cross-attempt state
  std::map<int, std::vector<double>> active_degradations;  // node -> factors
  std::set<int> down_nodes;
  std::uint64_t next_epoch = 0;
  double total_wasted_node_s = 0.0;
  int total_interruptions = 0;
  ClusterResult result;
  result.records.reserve(jobs.size());

  trace::Recorder* rec = options.recorder;
  const bool tracing = rec && rec->enabled();
  if (tracing) engine.set_recorder(rec);

  const auto now_s = [&] { return sim::to_seconds(engine.now()); };

  // --- energy accounting ----------------------------------------------
  // The cluster draw is piecewise constant between events: running
  // attempts each contribute a constant per-node draw, every in-service
  // unallocated node draws the idle floor, drained nodes draw nothing.
  // advance_energy() integrates the standing draw up to `now` and must run
  // before any power-affecting state change (start, end, fail, repair);
  // repeated calls at one timestamp are no-ops.
  const power::PowerModel* pm = options.power;
  const bool powered = pm != nullptr;
  const double idle_node_w =
      powered ? pm->node_idle(model.machine().node).value() : 0.0;
  double cluster_cpu_w = 0.0;
  double cluster_mem_w = 0.0;
  double cluster_net_w = 0.0;
  double last_power_t = 0.0;
  EnergyTotals energy;

  const auto cluster_draw_w = [&] {
    return cluster_cpu_w + cluster_mem_w + cluster_net_w +
           allocator.free_nodes() * idle_node_w;
  };

  const auto advance_energy = [&] {
    if (!powered) return;
    const double t = now_s();
    const double dt = t - last_power_t;
    if (dt > 0.0) {
      energy.cpu_j += cluster_cpu_w * dt;
      energy.mem_j += cluster_mem_w * dt;
      energy.net_j += cluster_net_w * dt;
      energy.idle_j += allocator.free_nodes() * idle_node_w * dt;
    }
    last_power_t = t;
  };

  const auto add_draw = [&](const Attempt& a) {
    if (!powered) return;
    cluster_cpu_w += a.job.nodes * a.draw.cpu_w.value();
    cluster_mem_w += a.job.nodes * a.draw.mem_w.value();
    cluster_net_w += a.job.nodes * a.draw.net_w.value();
  };

  const auto remove_draw = [&](const Attempt& a) {
    if (!powered) return;
    cluster_cpu_w -= a.job.nodes * a.draw.cpu_w.value();
    cluster_mem_w -= a.job.nodes * a.draw.mem_w.value();
    cluster_net_w -= a.job.nodes * a.draw.net_w.value();
  };

  const auto sample = [&] {
    const int busy = total_nodes - allocator.free_nodes() -
                     allocator.drained_count();
    const double power_w = powered ? cluster_draw_w() : 0.0;
    if (powered) energy.peak_w = std::max(energy.peak_w, power_w);
    result.frag_timeline.push_back({now_s(), allocator.fragmentation(), busy,
                                    allocator.drained_count(), power_w});
    if (tracing) {
      const auto track = trace::Track::global();
      const sim::Time now = engine.now();
      rec->counter(track, "batch", "queue_depth", now,
                   static_cast<double>(queue.size()));
      rec->counter(track, "batch", "busy_nodes", now,
                   static_cast<double>(busy));
      rec->counter(track, "batch", "utilization", now,
                   static_cast<double>(busy) / total_nodes);
      rec->counter(track, "batch", "fragmentation", now,
                   allocator.fragmentation());
      rec->counter(track, "batch", "running_jobs", now,
                   static_cast<double>(running.size()));
      rec->counter(track, "fault", "down_nodes", now,
                   static_cast<double>(down_nodes.size()));
      rec->counter(track, "fault", "wasted_work", now, total_wasted_node_s);
      rec->counter(track, "fault", "interrupted_jobs", now,
                   static_cast<double>(total_interruptions));
      if (powered) {
        rec->counter(track, "power", "cluster_watts", now, power_w);
        rec->counter(track, "power", "energy_j", now,
                     energy.cpu_j + energy.mem_j + energy.net_j +
                         energy.idle_j);
        rec->counter(track, "power", "capped_jobs", now,
                     static_cast<double>(energy.capped_starts));
      }
    }
  };

  /// Combined receive-degradation factor over an allocation (1 = healthy).
  const auto combined_factor = [&](const std::vector<int>& nodes) {
    double factor = 1.0;
    for (const int n : nodes) {
      const auto it = active_degradations.find(n);
      if (it == active_degradations.end()) continue;
      for (const double f : it->second) factor *= f;
    }
    return factor;
  };

  /// Progress rate of an attempt: degradation inflates the communication
  /// share of the runtime, exactly like placement scatter does.
  const auto rate_for = [&](const Attempt& a) {
    const double f = combined_factor(a.nodes);
    if (f >= 1.0) return 1.0;
    const double cf = a.job.profile.comm_fraction;
    return 1.0 / (1.0 + cf * (1.0 / f - 1.0));
  };

  const auto accrue = [&](Attempt& a) {
    const double t = now_s();
    a.eff_done_s =
        std::min(a.eff_required_s, a.eff_done_s + a.rate * (t - a.last_update_s));
    a.last_update_s = t;
  };

  const auto finalize = [&](const Attempt& a, EndReason reason,
                            double end_s) {
    const JobState& st = job_states[a.job.id];
    JobRecord record;
    record.job = a.job;
    record.start_s = a.start_s;
    record.end_s = end_s;
    record.alloc_nodes = a.nodes;
    record.mean_hops = a.mean_hops;
    record.placement_slowdown = a.placement_slowdown;
    record.end_reason = reason;
    record.attempts = st.attempts_started;
    record.interruptions = st.interruptions;
    record.first_start_s = st.first_start_s;
    record.busy_node_s = st.busy_node_s;
    record.useful_node_s = st.useful_node_s;
    record.wasted_node_s = st.wasted_node_s;
    record.energy_j = st.energy_j;
    record.wasted_energy_j = st.wasted_energy_j;
    record.dvfs_freq_scale = a.freq_scale;
    result.records.push_back(record);
  };

  std::function<void()> try_start;

  /// Schedule (or re-schedule after a rate change) the end of an attempt:
  /// completion when the remaining progress fits the wall-time budget, a
  /// wall-time kill otherwise. Stale events are voided by the epoch.
  const auto schedule_attempt_end = [&](Attempt& a) {
    a.epoch = ++next_epoch;
    const double t = now_s();
    const double remaining = (a.eff_required_s - a.eff_done_s) / a.rate;
    // (start - t) + walltime, not (start + walltime) - t: at t == start the
    // former is exactly the wall-time request, bit-for-bit.
    const double until_kill = (a.start_s - t) + a.job.walltime_s;
    const bool killed = remaining > until_kill;
    engine.schedule_in(
        sim::from_seconds(std::max(0.0, killed ? until_kill : remaining)),
        [&, id = a.job.id, epoch = a.epoch, killed] {
          const auto it = running.find(id);
          if (it == running.end() || it->second.epoch != epoch) return;
          Attempt& att = it->second;
          advance_energy();
          accrue(att);
          JobState& st = job_states[id];
          const double end = now_s();
          const double elapsed = end - att.start_s;
          st.busy_node_s += elapsed * att.job.nodes;
          if (powered) {
            const double attempt_j =
                att.job.nodes * att.draw.total().value() * elapsed;
            st.energy_j += attempt_j;
            if (killed) {
              st.wasted_energy_j += attempt_j;
              energy.wasted_j += attempt_j;
            }
          }
          if (killed) {
            st.wasted_node_s += elapsed * att.job.nodes;
            total_wasted_node_s += elapsed * att.job.nodes;
            CTESIM_WARN << "batch: job " << id << " wall-time killed at "
                        << att.job.walltime_s << " s (needed "
                        << att.eff_required_s << " s, overran its request by "
                        << 100.0 * (att.eff_required_s / att.job.walltime_s -
                                    1.0)
                        << "%)";
          } else {
            st.useful_node_s += att.work_s * att.job.nodes;
          }
          if (tracing) {
            const auto track = trace::Track::job(id);
            rec->end(track, engine.now());  // closes the "run" span
            rec->instant(track, "batch", killed ? "killed" : "finish", "",
                         engine.now());
          }
          finalize(att, killed ? EndReason::kWalltimeKilled
                               : EndReason::kCompleted,
                   end);
          remove_draw(att);
          allocator.release(static_cast<std::uint64_t>(id));
          running.erase(it);
          sample();
          try_start();
        });
  };

  /// Would starting `job` at DVFS state `s` keep the cluster under the
  /// power cap? Estimated with the compact reference runtime — placement
  /// scatter only stretches the actual runtime, which can only *lower* the
  /// traffic-rate (memory) draw, so the estimate is an upper bound and the
  /// cap holds for whatever allocation the job ends up with.
  const auto fits_cap = [&](const Job& job, const power::DvfsState& s) {
    const double est_runtime =
        model.reference_runtime(job, s.freq_scale);
    const power::JobDraw d = power::job_draw(
        model.machine().node, *pm, s, model.traffic_bytes_per_node(job),
        est_runtime, job.profile.comm_fraction);
    // The job's nodes stop drawing the idle floor when they go busy.
    const double delta_w = job.nodes * (d.total().value() - idle_node_w);
    return cluster_draw_w() + delta_w <= options.power_cap_w;
  };

  try_start = [&] {
    advance_energy();
    while (true) {
      const double t = now_s();
      std::vector<Reservation> reservations;
      reservations.reserve(running.size());
      for (const auto& [id, a] : running) {
        reservations.push_back({id, a.start_s + a.job.walltime_s,
                                a.job.nodes});
      }
      const int pos =
          queue.next_startable(t, allocator.free_nodes(), reservations);
      if (pos < 0) break;

      // Power-aware gate: the queue said the job fits the *nodes*; check it
      // also fits the *watts* before committing the allocation. An empty
      // machine is exempt — a head job that alone exceeds the cap must
      // still run eventually or the queue deadlocks.
      power::DvfsState dstate = options.dvfs;
      bool downclocked = false;
      if (powered && options.power_cap_w > 0.0 &&
          !(running.empty() && pos == 0)) {
        const Job& candidate = queue.at(pos);
        if (!fits_cap(candidate, dstate)) {
          bool rescued = false;
          if (options.dvfs_backfill) {
            // Energy-aware backfill: walk the ladder below the configured
            // point and take the first (shallowest) state that fits —
            // deeper states draw strictly less, so the walk is monotone.
            for (const power::DvfsState& s : power::dvfs_states()) {
              if (s.freq_scale >= dstate.freq_scale) continue;
              if (fits_cap(candidate, s)) {
                dstate = s;
                rescued = true;
                downclocked = true;
                break;
              }
            }
          }
          if (!rescued) {
            // Deferred, not rejected: re-evaluated when the next completion
            // or repair frees watts.
            ++energy.capped_starts;
            break;
          }
        }
      }

      const Job job = queue.pop(pos);
      JobState& st = job_states[job.id];
      const auto nodes = allocator.allocate(
          static_cast<std::uint64_t>(job.id), job.nodes, options.placement,
          placement_seed(options.seed, job.id, st.attempts_started));
      CTESIM_ENSURES(static_cast<int>(nodes.size()) == job.nodes);

      Attempt a;
      a.job = job;
      a.nodes = nodes;
      a.start_s = t;
      a.last_update_s = t;
      a.mean_hops = allocator.mean_pairwise_hops(nodes);
      a.placement_slowdown = model.slowdown(job, a.mean_hops);
      a.freq_scale = dstate.freq_scale;
      a.full_runtime_s = model.runtime(job, a.mean_hops, dstate.freq_scale);
      a.work_s = (1.0 - st.done_fraction) * a.full_runtime_s;
      a.ckpt = fault::resolve(options.checkpoint, fs, job.nodes);
      a.restarting = st.attempts_started > 0;
      a.eff_required_s =
          fault::attempt_duration(a.work_s, a.ckpt, a.restarting);
      a.rate = rate_for(a);
      if (powered) {
        a.draw = power::job_draw(
            model.machine().node, *pm, dstate,
            model.traffic_bytes_per_node(job), a.full_runtime_s,
            job.profile.comm_fraction);
        add_draw(a);
        if (downclocked) ++energy.downclocked_jobs;
      }
      if (!st.ever_started) {
        st.ever_started = true;
        st.first_start_s = t;
      }
      ++st.attempts_started;

      if (tracing) {
        const auto track = trace::Track::job(job.id);
        rec->end(track, engine.now());  // closes the "queued" span
        rec->begin(track, "batch", "run",
                   std::string(job.profile.name) + " " +
                       std::to_string(job.nodes) + " nodes" +
                       (a.restarting ? " (retry)" : ""),
                   engine.now());
      }
      Attempt& placed = running.emplace(job.id, std::move(a)).first->second;
      schedule_attempt_end(placed);
      sample();
    }
  };

  /// A node died: interrupt its job (restart from the last checkpoint,
  /// requeue within the retry budget) and drain the node from service.
  const auto handle_node_fail = [&](int node) {
    advance_energy();
    const double t = now_s();
    int victim = -1;
    for (const auto& [id, a] : running) {
      if (std::binary_search(a.nodes.begin(), a.nodes.end(), node)) {
        victim = id;
        break;
      }
    }
    if (victim >= 0) {
      Attempt& a = running.find(victim)->second;
      accrue(a);
      JobState& st = job_states[victim];
      const double preserved = fault::preserved_work(a.eff_done_s, a.work_s,
                                                     a.ckpt, a.restarting);
      const double elapsed = t - a.start_s;
      st.busy_node_s += elapsed * a.job.nodes;
      st.useful_node_s += preserved * a.job.nodes;
      st.wasted_node_s += (elapsed - preserved) * a.job.nodes;
      total_wasted_node_s += (elapsed - preserved) * a.job.nodes;
      if (powered) {
        const double attempt_j =
            a.job.nodes * a.draw.total().value() * elapsed;
        st.energy_j += attempt_j;
        // The checkpoint preserved `preserved` of `elapsed` seconds of
        // progress; the energy of the rest bought nothing.
        const double wasted_j =
            elapsed > 0.0 ? attempt_j * (elapsed - preserved) / elapsed
                          : 0.0;
        st.wasted_energy_j += wasted_j;
        energy.wasted_j += wasted_j;
        remove_draw(a);
      }
      st.done_fraction += preserved / a.full_runtime_s;
      ++st.interruptions;
      ++total_interruptions;
      if (tracing) {
        const auto track = trace::Track::job(victim);
        rec->end(track, engine.now());  // closes the "run" span
        rec->instant(track, "fault", "node_failure",
                     "node " + std::to_string(node), engine.now());
      }
      const Job job = a.job;
      allocator.release(static_cast<std::uint64_t>(victim));
      if (st.attempts_started > options.max_retries) {
        finalize(a, EndReason::kNodeFailure, t);
        running.erase(victim);
      } else {
        running.erase(victim);
        engine.schedule_in(sim::from_seconds(options.requeue_backoff_s),
                           [&, job] {
                             if (tracing) {
                               const auto track = trace::Track::job(job.id);
                               rec->instant(track, "fault", "requeue", "",
                                            engine.now());
                               rec->begin(track, "batch", "queued",
                                          job.profile.name, engine.now());
                             }
                             queue.push(job);
                             try_start();
                           });
      }
    }
    allocator.drain(node);
    down_nodes.insert(node);
    if (tracing) {
      const auto track = trace::Track::node(node);
      rec->instant(track, "fault", "fail", "", engine.now());
      rec->begin(track, "fault", "down", "", engine.now());
    }
    sample();
  };

  const auto handle_node_repair = [&](int node) {
    advance_energy();
    allocator.return_to_service(node);
    down_nodes.erase(node);
    if (tracing) {
      const auto track = trace::Track::node(node);
      rec->end(track, engine.now());  // closes the "down" span
      rec->instant(track, "fault", "repair", "", engine.now());
    }
    sample();
    try_start();
  };

  /// A degradation window opened or closed on `node`: recompute the
  /// progress rate of the job holding it (if any) and reschedule its end.
  const auto handle_degradation = [&](int node, double factor, bool start) {
    auto& factors = active_degradations[node];
    if (start) {
      factors.push_back(factor);
    } else {
      const auto it = std::find(factors.begin(), factors.end(), factor);
      CTESIM_EXPECTS(it != factors.end());
      factors.erase(it);
    }
    if (tracing) {
      rec->instant(trace::Track::node(node), "fault",
                   start ? "degrade_start" : "degrade_end",
                   std::to_string(factor), engine.now());
    }
    for (auto& [id, a] : running) {
      if (!std::binary_search(a.nodes.begin(), a.nodes.end(), node)) {
        continue;
      }
      accrue(a);
      a.rate = rate_for(a);
      schedule_attempt_end(a);
      break;
    }
  };

  for (const Job& job : jobs) {
    engine.schedule_at(sim::from_seconds(job.arrival_s), [&, job] {
      if (tracing) {
        const auto track = trace::Track::job(job.id);
        rec->instant(track, "batch", "submit", job.profile.name,
                     engine.now());
        rec->begin(track, "batch", "queued", job.profile.name, engine.now());
      }
      queue.push(job);
      try_start();
    });
  }
  if (options.faults) {
    for (const fault::FaultEvent& e : options.faults->events()) {
      engine.schedule_at(sim::from_seconds(e.time_s), [&, e] {
        switch (e.kind) {
          case fault::FaultKind::kNodeFail:
            handle_node_fail(e.node);
            break;
          case fault::FaultKind::kNodeRepair:
            handle_node_repair(e.node);
            break;
          case fault::FaultKind::kDegradeStart:
            handle_degradation(e.node, e.factor, true);
            break;
          case fault::FaultKind::kDegradeEnd:
            handle_degradation(e.node, e.factor, false);
            break;
        }
      });
    }
  }
  engine.run();
  result.engine_events = engine.events_processed();
  CTESIM_ENSURES(running.empty());

  // Jobs still queued when every event has drained can never run: the
  // failed (and never repaired) part of the machine left too few in-service
  // nodes. They end as node-failure casualties at the final time.
  while (!queue.empty()) {
    const Job job = queue.pop(0);
    const double t = now_s();
    if (tracing) {
      const auto track = trace::Track::job(job.id);
      rec->end(track, engine.now());  // closes the "queued" span
      rec->instant(track, "fault", "abandoned", "machine too small",
                   engine.now());
    }
    Attempt a;
    a.job = job;
    a.start_s = t;
    finalize(a, EndReason::kNodeFailure, t);
  }
  // Close the "down" span of nodes that never came back.
  if (tracing) {
    for (const int node : down_nodes) {
      rec->end(trace::Track::node(node), engine.now());
    }
  }
  CTESIM_ENSURES(result.records.size() == jobs.size());

  std::sort(result.records.begin(), result.records.end(),
            [](const JobRecord& a, const JobRecord& b) {
              return a.job.id < b.job.id;
            });
  double first_arrival = 0.0;
  double last_end = 0.0;
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    const JobRecord& r = result.records[i];
    if (i == 0 || r.job.arrival_s < first_arrival) {
      first_arrival = r.job.arrival_s;
    }
    last_end = std::max(last_end, r.end_s);
  }
  result.makespan_s =
      result.records.empty() ? 0.0 : last_end - first_arrival;
  if (powered) {
    // Integration stopped at the last event; the machine idles forever
    // after, so the window is exactly [0, last event].
    energy.total_j =
        energy.cpu_j + energy.mem_j + energy.net_j + energy.idle_j;
    result.has_power = true;
    result.energy = energy;
  }
  return result;
}

}  // namespace ctesim::batch
