#include "batch/cluster.h"

#include <algorithm>
#include <functional>
#include <string>

#include "core/engine.h"
#include "core/time.h"
#include "trace/recorder.h"
#include "util/check.h"
#include "util/log.h"

namespace ctesim::batch {

namespace {

/// Mix the run seed with the job id so the random placement policy draws an
/// independent, order-free stream per job (splitmix-style finalizer).
std::uint64_t placement_seed(std::uint64_t seed, int job_id) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL *
                               (static_cast<std::uint64_t>(job_id) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

ClusterResult run_cluster(const RuntimeModel& model,
                          const std::vector<Job>& jobs,
                          const ClusterOptions& options) {
  const int total_nodes = model.machine().num_nodes;
  for (const Job& job : jobs) {
    CTESIM_EXPECTS(job.nodes >= 1 && job.nodes <= total_nodes);
    CTESIM_EXPECTS(job.arrival_s >= 0.0 && job.walltime_s > 0.0);
  }

  sim::Engine engine;
  sched::Allocator allocator(model.topology());
  JobQueue queue(options.queue, total_nodes);
  std::vector<Reservation> running;
  ClusterResult result;
  result.records.reserve(jobs.size());

  trace::Recorder* rec = options.recorder;
  const bool tracing = rec && rec->enabled();
  if (tracing) engine.set_recorder(rec);

  const auto sample = [&] {
    const int busy = total_nodes - allocator.free_nodes();
    result.frag_timeline.push_back({sim::to_seconds(engine.now()),
                                    allocator.fragmentation(), busy});
    if (tracing) {
      const auto track = trace::Track::global();
      const sim::Time now = engine.now();
      rec->counter(track, "batch", "queue_depth", now,
                   static_cast<double>(queue.size()));
      rec->counter(track, "batch", "busy_nodes", now,
                   static_cast<double>(busy));
      rec->counter(track, "batch", "utilization", now,
                   static_cast<double>(busy) / total_nodes);
      rec->counter(track, "batch", "fragmentation", now,
                   allocator.fragmentation());
      rec->counter(track, "batch", "running_jobs", now,
                   static_cast<double>(running.size()));
    }
  };

  std::function<void()> try_start;
  try_start = [&] {
    while (true) {
      const double now_s = sim::to_seconds(engine.now());
      const int pos =
          queue.next_startable(now_s, allocator.free_nodes(), running);
      if (pos < 0) break;
      const Job job = queue.pop(pos);
      const auto nodes = allocator.allocate(
          static_cast<std::uint64_t>(job.id), job.nodes, options.placement,
          placement_seed(options.seed, job.id));
      CTESIM_ENSURES(static_cast<int>(nodes.size()) == job.nodes);

      JobRecord record;
      record.job = job;
      record.start_s = now_s;
      record.alloc_nodes = nodes;
      record.mean_hops = allocator.mean_pairwise_hops(nodes);
      record.placement_slowdown = model.slowdown(job, record.mean_hops);
      const double modeled = model.runtime(job, record.mean_hops);
      const bool killed = modeled > job.walltime_s;
      const double actual = killed ? job.walltime_s : modeled;
      record.end_s = now_s + actual;
      record.end_reason =
          killed ? EndReason::kWalltimeKilled : EndReason::kCompleted;
      result.records.push_back(record);

      if (tracing) {
        const auto track = trace::Track::job(job.id);
        rec->end(track, engine.now());  // closes the "queued" span
        rec->begin(track, "batch", "run",
                   std::string(job.profile.name) + " " +
                       std::to_string(job.nodes) + " nodes",
                   engine.now());
      }
      running.push_back(
          {job.id, now_s + job.walltime_s, job.nodes});
      engine.schedule_in(
          sim::from_seconds(actual),
          [&, id = job.id, killed, modeled,
           walltime = job.walltime_s] {
            if (killed) {
              CTESIM_WARN << "batch: job " << id << " wall-time killed at "
                          << walltime << " s (needed " << modeled
                          << " s, overran its request by "
                          << 100.0 * (modeled / walltime - 1.0) << "%)";
            }
            if (tracing) {
              const auto track = trace::Track::job(id);
              rec->end(track, engine.now());  // closes the "run" span
              rec->instant(track, "batch", killed ? "killed" : "finish", "",
                           engine.now());
            }
            allocator.release(static_cast<std::uint64_t>(id));
            running.erase(std::find_if(running.begin(), running.end(),
                                       [id](const Reservation& r) {
                                         return r.job_id == id;
                                       }));
            sample();
            try_start();
          });
      sample();
    }
  };

  for (const Job& job : jobs) {
    engine.schedule_at(sim::from_seconds(job.arrival_s), [&, job] {
      if (tracing) {
        const auto track = trace::Track::job(job.id);
        rec->instant(track, "batch", "submit", job.profile.name,
                     engine.now());
        rec->begin(track, "batch", "queued", job.profile.name, engine.now());
      }
      queue.push(job);
      try_start();
    });
  }
  engine.run();
  CTESIM_ENSURES(queue.empty());
  CTESIM_ENSURES(running.empty());
  CTESIM_ENSURES(result.records.size() == jobs.size());

  std::sort(result.records.begin(), result.records.end(),
            [](const JobRecord& a, const JobRecord& b) {
              return a.job.id < b.job.id;
            });
  double first_arrival = 0.0;
  double last_end = 0.0;
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    const JobRecord& r = result.records[i];
    if (i == 0 || r.job.arrival_s < first_arrival) {
      first_arrival = r.job.arrival_s;
    }
    last_end = std::max(last_end, r.end_s);
  }
  result.makespan_s =
      result.records.empty() ? 0.0 : last_end - first_arrival;
  return result;
}

}  // namespace ctesim::batch
