// Cluster-level metrics over a batch simulation: the numbers a production
// HPC operator (or a scheduler paper) reports.
#pragma once

#include "batch/cluster.h"

namespace ctesim::batch {

struct ClusterMetrics {
  int jobs = 0;
  int killed = 0;  ///< jobs that hit their wall-time limit
  double makespan_s = 0.0;
  /// Busy node-seconds / (total nodes × makespan).
  double utilization = 0.0;

  // --- resilience (all zero/one on a fault-free run) ----------------------
  int interrupted = 0;  ///< jobs with at least one node-failure interruption
  int failed = 0;       ///< jobs that ended as EndReason::kNodeFailure
  double mean_attempts = 1.0;  ///< attempts per job (1 = no requeues)
  /// Useful node-seconds / (total nodes × makespan): the share of machine
  /// capacity that produced completed or checkpoint-preserved work. Equals
  /// utilization on a fault-free run with no kills.
  double goodput = 0.0;
  /// Node-hours burned without result: unpreserved work of interrupted
  /// attempts plus whole wall-time-killed attempts.
  double wasted_node_h = 0.0;
  /// Time-averaged in-service fraction of the machine (1 = never lost a
  /// node), from the down_nodes samples in the fragmentation timeline.
  double availability = 1.0;
  double mean_wait_s = 0.0;
  double p95_wait_s = 0.0;
  double p99_wait_s = 0.0;
  double mean_bounded_slowdown = 0.0;
  double p95_bounded_slowdown = 0.0;
  double p99_bounded_slowdown = 0.0;
  /// Job-averaged allocation scatter and the runtime it cost.
  double mean_hops = 0.0;
  double mean_placement_slowdown = 0.0;
  /// Time-averaged sched::Allocator::fragmentation() over the run.
  double time_avg_fragmentation = 0.0;

  // --- energy (all zero unless the run had ClusterOptions::power) ---------
  double energy_to_solution_j = 0.0;  ///< whole-run energy, idle included
  /// Energy-delay product, J*s: energy-to-solution × makespan. The figure
  /// of merit DVFS sweeps optimize — frequency states trade its factors.
  double edp_js = 0.0;
  double mean_power_w = 0.0;  ///< energy-to-solution / makespan
  double peak_power_w = 0.0;  ///< max cluster draw over the timeline
  /// Joules burned without result (killed attempts, unpreserved work).
  double wasted_energy_j = 0.0;
  double cpu_energy_j = 0.0;   ///< running jobs' core + uncore + base
  double mem_energy_j = 0.0;   ///< traffic-proportional DRAM/HBM
  double net_energy_j = 0.0;   ///< comm-share link energy
  double idle_energy_j = 0.0;  ///< unallocated in-service nodes
  int capped_starts = 0;       ///< starts deferred by the power cap
  int downclocked_jobs = 0;    ///< backfills started below nominal
};

/// Summarize a finished run; `total_nodes` is the machine size the
/// utilization is measured against. `tau_s` bounds the slowdown metric.
ClusterMetrics summarize(const ClusterResult& result, int total_nodes,
                         double tau_s = 10.0);

}  // namespace ctesim::batch
