// Job runtime model: how long a batch job runs on a given allocation.
//
// Compute time comes from the same roofline::ExecModel the figure benches
// use (one aggregated rank per node, mpi::Placement::per_node granularity).
// Placement quality enters as a slowdown on the job's communication share:
// the further apart the allocator scattered the job's nodes (mean pairwise
// hops vs the compact reference for that size), the longer its halo
// exchanges and reductions take. This is the quantity the topology-aware
// CTE-Arm scheduler exists to minimize (paper Sections II and VI iv).
#pragma once

#include <map>

#include "arch/machine.h"
#include "batch/job.h"
#include "net/topology.h"
#include "roofline/exec_model.h"
#include "sampling/executor.h"
#include "sampling/plan.h"
#include "sched/allocator.h"

namespace ctesim::batch {

class RuntimeModel {
 public:
  /// `machine` must have a torus interconnect (the allocator's domain).
  explicit RuntimeModel(const arch::MachineModel& machine);

  /// Runtime on a compact (reference) allocation — what the workload
  /// generator pads into a wall-time request. `freq_scale` (a DVFS
  /// operating point, see power/power_model.h) scales the core clock and
  /// therefore the roofline compute rate; memory bandwidth is unchanged,
  /// so compute-bound jobs stretch by ~1/freq_scale and memory-bound jobs
  /// barely move. 1.0 is exactly the unscaled model. Fixed-runtime jobs
  /// (trace replay) carry measured times and do not respond to DVFS.
  double reference_runtime(const Job& job, double freq_scale = 1.0) const;

  /// Runtime on the specific allocation `nodes`; `hops` is the allocation's
  /// mean pairwise hop distance (sched::Allocator::mean_pairwise_hops).
  double runtime(const Job& job, double hops, double freq_scale = 1.0) const;

  /// Per-iteration OS-noise amplitude of the sampled_runtime() step model
  /// (uniform in [-kStepJitter, +kStepJitter], the same order as the
  /// simmpi worlds' compute_jitter).
  static constexpr double kStepJitter = 0.015;

  /// Runtime estimated through the sampling executor. The job's
  /// iterations become the step axis: each iteration costs
  /// runtime(job, hops, freq)/iterations stretched by deterministic
  /// per-step jitter (seeded from plan.seed and job.id, random-access so
  /// any subset of steps reproduces the full run's values). Exact plans
  /// simulate every iteration — the ground truth the CI of a sampled plan
  /// is measured against; sampled plans simulate K representatives plus
  /// warmup and report the CI. Fixed-runtime jobs collapse to one step.
  sampling::Outcome sampled_runtime(const Job& job, double hops,
                                    const sampling::SamplingPlan& plan,
                                    double freq_scale = 1.0) const;

  /// Memory traffic one node of this job moves over its whole runtime
  /// (elements x bytes/elem x iterations) — what the power layer prices at
  /// J/B. Zero for fixed-runtime jobs (no modeled traffic).
  double traffic_bytes_per_node(const Job& job) const;

  /// Placement slowdown factor >= 1: 1 + comm_fraction * (hops/ref - 1),
  /// clamped below at 1 (a better-than-reference block is not a speedup —
  /// the reference already is the compact optimum for that size).
  double slowdown(const Job& job, double hops) const;

  /// Mean pairwise hops of a compact block of `nodes` nodes on an empty
  /// torus — the reference the scheduler aims for (cached per size).
  double reference_hops(int nodes) const;

  const arch::MachineModel& machine() const { return machine_; }
  const net::TorusTopology& topology() const { return topology_; }

 private:
  double base_runtime(const Job& job, double freq_scale) const;
  /// The exec model at a DVFS frequency scale (1.0 = the base model);
  /// scaled models are built lazily and cached per distinct scale.
  const roofline::ExecModel& exec_at(double freq_scale) const;

  arch::MachineModel machine_;
  net::TorusTopology topology_;
  roofline::ExecModel exec_;
  mutable std::map<int, double> ref_hops_cache_;
  mutable std::map<double, roofline::ExecModel> dvfs_exec_cache_;
};

}  // namespace ctesim::batch
