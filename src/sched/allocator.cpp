#include "sched/allocator.h"

#include <algorithm>
#include <deque>

#include "util/assert.h"
#include "util/check.h"

namespace ctesim::sched {

const char* name_of(Policy policy) {
  switch (policy) {
    case Policy::kContiguous:
      return "contiguous";
    case Policy::kLinear:
      return "linear";
    case Policy::kRandom:
      return "random";
  }
  return "?";
}

Allocator::Allocator(const net::TorusTopology& topology)
    : topology_(&topology),
      busy_(static_cast<std::size_t>(topology.num_nodes()), false),
      drained_(static_cast<std::size_t>(topology.num_nodes()), false) {}

void Allocator::occupy(const std::vector<int>& nodes) {
  for (int n : nodes) {
    CTESIM_EXPECTS(n >= 0 && n < topology_->num_nodes());
    CTESIM_EXPECTS(!unavailable(n));
    busy_[static_cast<std::size_t>(n)] = true;
  }
}

void Allocator::drain(int node) {
  CTESIM_EXPECTS(node >= 0 && node < topology_->num_nodes());
  CTESIM_EXPECTS(!busy_[static_cast<std::size_t>(node)]);
  CTESIM_ASSERT(!drained_[static_cast<std::size_t>(node)],
                "double drain: the node is already out of service — the "
                "fault script and the allocator state drifted");
  drained_[static_cast<std::size_t>(node)] = true;
}

void Allocator::return_to_service(int node) {
  CTESIM_EXPECTS(node >= 0 && node < topology_->num_nodes());
  CTESIM_ASSERT(drained_[static_cast<std::size_t>(node)],
                "returning an in-service node: the repair has no matching "
                "drain — the fault script and the allocator state drifted");
  drained_[static_cast<std::size_t>(node)] = false;
}

bool Allocator::is_drained(int node) const {
  CTESIM_EXPECTS(node >= 0 && node < topology_->num_nodes());
  return drained_[static_cast<std::size_t>(node)];
}

int Allocator::drained_count() const {
  return static_cast<int>(
      std::count(drained_.begin(), drained_.end(), true));
}

int Allocator::in_service_nodes() const {
  return topology_->num_nodes() - drained_count();
}

void Allocator::release(const std::vector<int>& nodes) {
  for (int n : nodes) {
    CTESIM_EXPECTS(n >= 0 && n < topology_->num_nodes());
    CTESIM_EXPECTS(busy_[static_cast<std::size_t>(n)]);
    busy_[static_cast<std::size_t>(n)] = false;
  }
}

std::vector<int> Allocator::allocate(std::uint64_t job_id, int count,
                                     Policy policy, std::uint64_t seed) {
  CTESIM_EXPECTS(!owns(job_id));
  std::vector<int> nodes = allocate(count, policy, seed);
  if (!nodes.empty()) owned_[job_id] = nodes;
  return nodes;
}

void Allocator::release(std::uint64_t job_id) {
  const auto it = owned_.find(job_id);
  CTESIM_EXPECTS(it != owned_.end());
  // Bookkeeping invariant: a job's recorded nodes were marked busy when it
  // was placed; a clear mark here means the two maps drifted (e.g. a raw
  // release() bypassed the ownership record) — a double release in effect.
  for (const int n : it->second) {
    CTESIM_ASSERT(busy_[static_cast<std::size_t>(n)],
                  "double release: a node recorded for this job is no "
                  "longer marked busy");
  }
  release(it->second);
  owned_.erase(it);
}

bool Allocator::owns(std::uint64_t job_id) const {
  return owned_.count(job_id) != 0;
}

const std::vector<int>& Allocator::nodes_of(std::uint64_t job_id) const {
  const auto it = owned_.find(job_id);
  CTESIM_EXPECTS(it != owned_.end());
  return it->second;
}

int Allocator::largest_free_block() const {
  // Connected components over free nodes with torus adjacency.
  const int n = topology_->num_nodes();
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  int best = 0;
  for (int start = 0; start < n; ++start) {
    if (unavailable(start) || seen[static_cast<std::size_t>(start)]) {
      continue;
    }
    int size = 0;
    std::deque<int> queue{start};
    seen[static_cast<std::size_t>(start)] = true;
    while (!queue.empty()) {
      const int node = queue.front();
      queue.pop_front();
      ++size;
      const auto coords = topology_->coordinates(node);
      for (std::size_t d = 0; d < topology_->dims().size(); ++d) {
        for (int dir : {-1, +1}) {
          auto next = coords;
          const int dim_size = topology_->dims()[d];
          next[d] = (next[d] + dir + dim_size) % dim_size;
          const int nb = topology_->node_at(next);
          if (!seen[static_cast<std::size_t>(nb)] && !unavailable(nb)) {
            seen[static_cast<std::size_t>(nb)] = true;
            queue.push_back(nb);
          }
        }
      }
    }
    best = std::max(best, size);
  }
  return best;
}

double Allocator::fragmentation() const {
  const int free = free_nodes();
  if (free == 0) return 0.0;
  return 1.0 - static_cast<double>(largest_free_block()) /
                   static_cast<double>(free);
}

int Allocator::free_nodes() const {
  int free = 0;
  for (int n = 0; n < topology_->num_nodes(); ++n) {
    if (!unavailable(n)) ++free;
  }
  return free;
}

bool Allocator::is_busy(int node) const {
  CTESIM_EXPECTS(node >= 0 && node < topology_->num_nodes());
  return busy_[static_cast<std::size_t>(node)];
}

std::vector<int> Allocator::allocate(int count, Policy policy,
                                     std::uint64_t seed) {
  CTESIM_EXPECTS(count >= 1);
  if (count > free_nodes()) return {};
  std::vector<int> nodes;
  switch (policy) {
    case Policy::kContiguous:
      nodes = allocate_contiguous(count);
      break;
    case Policy::kLinear:
      nodes = allocate_linear(count);
      break;
    case Policy::kRandom:
      nodes = allocate_random(count, seed);
      break;
  }
  CTESIM_ENSURES(static_cast<int>(nodes.size()) == count);
  for (int n : nodes) busy_[static_cast<std::size_t>(n)] = true;
  return nodes;
}

std::vector<int> Allocator::allocate_linear(int count) {
  std::vector<int> nodes;
  for (int n = 0; n < topology_->num_nodes() &&
                  static_cast<int>(nodes.size()) < count;
       ++n) {
    if (!unavailable(n)) nodes.push_back(n);
  }
  return nodes;
}

std::vector<int> Allocator::allocate_random(int count, std::uint64_t seed) {
  std::vector<int> free;
  for (int n = 0; n < topology_->num_nodes(); ++n) {
    if (!unavailable(n)) free.push_back(n);
  }
  Rng rng(seed);
  // Fisher-Yates prefix shuffle of the free list.
  for (int i = 0; i < count; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(i, static_cast<std::int64_t>(free.size()) - 1));
    std::swap(free[static_cast<std::size_t>(i)], free[j]);
  }
  free.resize(static_cast<std::size_t>(count));
  std::sort(free.begin(), free.end());
  return free;
}

std::vector<int> Allocator::allocate_contiguous(int count) {
  // Grow a BFS ball around the best free seed; pick the seed whose ball
  // has the smallest radius (cheap proxy for the scheduler's block
  // placement). To stay O(nodes^2) at worst, try every free seed on small
  // machines and a stride sample on large ones.
  const int n = topology_->num_nodes();
  std::vector<int> best;
  double best_score = 1e300;
  const int stride = n > 512 ? n / 256 : 1;
  for (int seed = 0; seed < n; seed += stride) {
    if (unavailable(seed)) continue;
    // BFS over free nodes only.
    std::vector<int> ball;
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    std::deque<int> queue{seed};
    seen[static_cast<std::size_t>(seed)] = true;
    while (!queue.empty() && static_cast<int>(ball.size()) < count) {
      const int node = queue.front();
      queue.pop_front();
      if (!unavailable(node)) ball.push_back(node);
      // Neighbors: +-1 in every dimension.
      const auto coords = topology_->coordinates(node);
      for (std::size_t d = 0; d < topology_->dims().size(); ++d) {
        for (int dir : {-1, +1}) {
          auto next = coords;
          const int size = topology_->dims()[d];
          next[d] = (next[d] + dir + size) % size;
          const int nb = topology_->node_at(next);
          if (!seen[static_cast<std::size_t>(nb)]) {
            seen[static_cast<std::size_t>(nb)] = true;
            queue.push_back(nb);
          }
        }
      }
    }
    if (static_cast<int>(ball.size()) < count) continue;
    const double score = mean_pairwise_hops(ball);
    if (score < best_score) {
      best_score = score;
      best = ball;
    }
  }
  CTESIM_ENSURES(!best.empty());
  std::sort(best.begin(), best.end());
  return best;
}

double Allocator::mean_pairwise_hops(const std::vector<int>& nodes) const {
  if (nodes.size() < 2) return 0.0;
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      total += topology_->hops(nodes[i], nodes[j]);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

}  // namespace ctesim::sched
