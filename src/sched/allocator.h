// Job-scheduler node allocation on a torus.
//
// The paper notes (Section II) that CTE-Arm's scheduler is topology-aware:
// it allocates nodes "to exploit proximity and reduce the latency of
// messages" — and later complains (Section VI, item iv) that users cannot
// pin specific nodes. This module models the allocation policies so their
// effect on application communication can be quantified (see
// bench/ablation_placement): contiguous torus blocks vs first-free linear
// allocation vs random scatter on a partially busy machine.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/topology.h"
#include "util/rng.h"

namespace ctesim::sched {

enum class Policy {
  kContiguous,  ///< BFS-grown compact block (topology-aware scheduler)
  kLinear,      ///< lowest-index free nodes (topology-oblivious)
  kRandom,      ///< uniformly scattered free nodes (worst case)
};

const char* name_of(Policy policy);

class Allocator {
 public:
  /// Manages allocations over `topology` (not owned; must outlive).
  explicit Allocator(const net::TorusTopology& topology);

  /// Mark nodes busy (existing jobs) without tracking a job id.
  void occupy(const std::vector<int>& nodes);

  /// Allocate `count` free nodes under `policy`. Returns the node list
  /// (empty if not enough free nodes) and marks them busy.
  std::vector<int> allocate(int count, Policy policy,
                            std::uint64_t seed = 1);

  /// Like allocate(count, ...) but records ownership under `job_id` so the
  /// batch scheduler can release by job instead of by node list. `job_id`
  /// must not already own an allocation. Returns empty (and records
  /// nothing) if not enough free nodes.
  std::vector<int> allocate(std::uint64_t job_id, int count, Policy policy,
                            std::uint64_t seed = 1);

  /// Release previously allocated/occupied nodes.
  void release(const std::vector<int>& nodes);

  /// Release every node owned by `job_id` (which must own an allocation —
  /// callers cannot release nodes they don't hold).
  void release(std::uint64_t job_id);

  bool owns(std::uint64_t job_id) const;
  const std::vector<int>& nodes_of(std::uint64_t job_id) const;

  /// Take `node` out of service (a failure or an operator drain). The node
  /// must be free — the batch runtime releases a victim job before
  /// draining its node — and stays unallocatable until returned. Draining
  /// an already-drained node is bookkeeping drift (CTESIM_CHECKS).
  void drain(int node);

  /// Return a drained node to service (a repair). Returning a node that is
  /// not drained is bookkeeping drift (CTESIM_CHECKS).
  void return_to_service(int node);

  bool is_drained(int node) const;
  int drained_count() const;
  /// Nodes currently in service (total minus drained), busy or free.
  int in_service_nodes() const;

  int free_nodes() const;
  bool is_busy(int node) const;

  /// Size of the largest connected block of free nodes (torus adjacency).
  /// 0 when the machine is full.
  int largest_free_block() const;

  /// Fragmentation in [0,1]: 1 - largest_free_block/free_nodes. 0 means all
  /// free nodes form one block (or the machine is full — nothing to
  /// fragment); values near 1 mean the free capacity is confetti that only
  /// small jobs can use contiguously.
  double fragmentation() const;

  /// Mean pairwise hop distance of a node set — the quality metric a
  /// topology-aware scheduler optimizes. 0 for fewer than two nodes.
  double mean_pairwise_hops(const std::vector<int>& nodes) const;

 private:
  std::vector<int> allocate_contiguous(int count);
  std::vector<int> allocate_linear(int count);
  std::vector<int> allocate_random(int count, std::uint64_t seed);

  /// A node is allocatable iff neither busy nor drained.
  bool unavailable(int node) const {
    return busy_[static_cast<std::size_t>(node)] ||
           drained_[static_cast<std::size_t>(node)];
  }

  const net::TorusTopology* topology_;
  std::vector<bool> busy_;
  std::vector<bool> drained_;  ///< out of service (failed / draining)
  std::map<std::uint64_t, std::vector<int>> owned_;
};

}  // namespace ctesim::sched
