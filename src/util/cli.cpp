#include "util/cli.h"

#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace ctesim {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

Cli& Cli::add(const std::string& name, Kind kind, void* target,
              const std::string& help, std::string default_repr) {
  CTESIM_EXPECTS(!name.empty());
  CTESIM_EXPECTS(target != nullptr);
  CTESIM_EXPECTS(opts_.find(name) == opts_.end());
  opts_[name] = Opt{kind, target, help, std::move(default_repr)};
  order_.push_back(name);
  return *this;
}

Cli& Cli::flag(const std::string& name, bool* value, const std::string& help) {
  return add(name, Kind::kBool, value, help, *value ? "true" : "false");
}

Cli& Cli::option(const std::string& name, std::int64_t* value,
                 const std::string& help) {
  return add(name, Kind::kInt, value, help, std::to_string(*value));
}

Cli& Cli::option(const std::string& name, double* value,
                 const std::string& help) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", *value);
  return add(name, Kind::kDouble, value, help, buf);
}

Cli& Cli::option(const std::string& name, std::string* value,
                 const std::string& help) {
  return add(name, Kind::kString, value, help, *value);
}

bool Cli::assign(const std::string& name, const std::string& value) {
  auto it = opts_.find(name);
  if (it == opts_.end()) {
    std::fprintf(stderr, "%s: unknown option --%s\n", program_.c_str(),
                 name.c_str());
    return false;
  }
  Opt& opt = it->second;
  char* end = nullptr;
  switch (opt.kind) {
    case Kind::kBool:
      if (value == "" || value == "true" || value == "1") {
        *static_cast<bool*>(opt.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(opt.target) = false;
      } else {
        std::fprintf(stderr, "%s: bad bool for --%s: '%s'\n", program_.c_str(),
                     name.c_str(), value.c_str());
        return false;
      }
      return true;
    case Kind::kInt: {
      const long long v = std::strtoll(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0') {
        std::fprintf(stderr, "%s: bad integer for --%s: '%s'\n",
                     program_.c_str(), name.c_str(), value.c_str());
        return false;
      }
      *static_cast<std::int64_t*>(opt.target) = v;
      return true;
    }
    case Kind::kDouble: {
      const double v = std::strtod(value.c_str(), &end);
      if (value.empty() || *end != '\0') {
        std::fprintf(stderr, "%s: bad number for --%s: '%s'\n",
                     program_.c_str(), name.c_str(), value.c_str());
        return false;
      }
      *static_cast<double*>(opt.target) = v;
      return true;
    }
    case Kind::kString:
      *static_cast<std::string*>(opt.target) = value;
      return true;
  }
  return false;
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "%s: unexpected argument '%s'\n", program_.c_str(),
                   arg.c_str());
      return false;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    std::string name;
    std::string value;
    bool have_value = false;
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    } else {
      name = arg;
      auto it = opts_.find(name);
      const bool is_bool = it != opts_.end() && it->second.kind == Kind::kBool;
      if (!is_bool && i + 1 < argc) {
        value = argv[++i];
        have_value = true;
      }
    }
    if (!have_value) value = "";
    if (!assign(name, value)) return false;
  }
  return true;
}

void Cli::print_help() const {
  std::printf("%s — %s\n\nOptions:\n", program_.c_str(), description_.c_str());
  for (const auto& name : order_) {
    const Opt& opt = opts_.at(name);
    std::printf("  --%-24s %s (default: %s)\n", name.c_str(), opt.help.c_str(),
                opt.default_repr.c_str());
  }
}

}  // namespace ctesim
