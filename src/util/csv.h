// CSV input/output. Output: every figure binary can dump its series as CSV
// (via --csv=path) so results can be re-plotted outside the terminal.
// Input: the batch subsystem replays job traces from CSV (see
// batch/workload.h for the trace schema).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace ctesim {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws
  /// std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Append one row; field counts must match the header.
  void row(const std::vector<std::string>& fields);

  /// Convenience for numeric rows.
  void row(const std::vector<double>& fields);

  /// Quote a field per RFC 4180 if it contains separators/quotes/newlines.
  static std::string escape(const std::string& field);

 private:
  std::ofstream out_;
  std::size_t columns_;

  void write_fields(const std::vector<std::string>& fields);
};

/// Reads a whole CSV file (header row + data rows) into memory. Handles
/// RFC 4180 quoting within a line ("" escapes a quote); embedded newlines
/// inside quoted fields are not supported — none of our writers emit them.
/// Throws std::runtime_error on unopenable files or ragged rows.
class CsvReader {
 public:
  explicit CsvReader(const std::string& path);

  const std::vector<std::string>& header() const { return header_; }
  std::size_t rows() const { return rows_.size(); }

  /// True if the header contains `column`.
  bool has_column(const std::string& column) const;

  const std::string& cell(std::size_t row, std::size_t col) const;
  const std::string& cell(std::size_t row, const std::string& column) const;

  /// Cell parsed as a double; throws std::runtime_error on non-numeric.
  double number(std::size_t row, const std::string& column) const;

  /// Split one CSV line into fields (exposed for tests).
  static std::vector<std::string> parse_line(const std::string& line);

 private:
  std::size_t column_index(const std::string& column) const;

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ctesim
