// CSV output for the bench harnesses: every figure binary can dump its series
// as CSV (via --csv=path) so results can be re-plotted outside the terminal.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace ctesim {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws
  /// std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Append one row; field counts must match the header.
  void row(const std::vector<std::string>& fields);

  /// Convenience for numeric rows.
  void row(const std::vector<double>& fields);

  /// Quote a field per RFC 4180 if it contains separators/quotes/newlines.
  static std::string escape(const std::string& field);

 private:
  std::ofstream out_;
  std::size_t columns_;

  void write_fields(const std::vector<std::string>& fields);
};

}  // namespace ctesim
