// Small-buffer, move-only callable — the event-callback type of the DES
// engine's hot path.
//
// std::function is the wrong tool for a discrete-event simulator: it is
// copyable (so every callback type must be), its small-object optimisation
// is implementation-defined (libstdc++: 16 bytes — a coroutine handle plus
// one captured pointer already spills), and a spill is a heap allocation
// per scheduled event. InlineFunction fixes the contract instead of hoping:
//
//   - Move-only. Events are scheduled once and dispatched once; nothing in
//     the engine ever needs to copy a callback, so captured state does not
//     need to be copyable either.
//   - kInlineFunctionCapacity (48) bytes of inline storage, chosen so every
//     closure the simulation layers schedule today — coroutine-handle
//     resumes (8 B), engine timers, channel/semaphore wakeups, simmpi
//     completions — stays inline. With the two function pointers this makes
//     sizeof(InlineFunction<void()>) one cache line (64 B).
//   - A guaranteed heap fallback for oversized closures (batch/cluster.cpp
//     schedules job-arrival closures carrying a whole Job); the fallback
//     path is static_assert-pinned below and counted via spill_count(), so
//     tests (tests/test_inline_function.cpp) and the allocation-counting
//     engine test can prove hot-path closures never take it. ctesim_lint's
//     core-std-function rule plus fits_inline static_asserts at the core
//     call sites keep src/core itself spill-free.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "util/check.h"

namespace ctesim::util {

/// Inline storage of the engine's event callbacks. 48 bytes: the largest
/// closure src/core and src/simmpi schedule is well under this; together
/// with the invoke/manage pointers the whole object is one 64-byte line.
inline constexpr std::size_t kInlineFunctionCapacity = 48;

/// Heap-fallback constructions since process start (all threads). A test
/// hook: steady-state engine tests snapshot it around a workload to assert
/// the hot path stayed inline. Never reset in production code.
inline std::atomic<std::uint64_t>& inline_function_spill_count() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

template <typename Signature, std::size_t Capacity = kInlineFunctionCapacity>
class InlineFunction;  // undefined: only the R(Args...) partial spec exists

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  /// True when a callable of type F is stored inline (no heap allocation).
  /// Nothrow movability is required because relocation happens inside the
  /// noexcept move constructor (and the event queue relies on it).
  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  /// True when moving the stored callable is a plain byte copy with nothing
  /// to destroy. Coroutine-handle resumes and the engine's timer closures
  /// are all of this kind; for them manage_ stays nullptr and a move is an
  /// inlinable memcpy instead of an indirect call — what keeps sifting such
  /// callbacks through the event queue cheap.
  template <typename F>
  static constexpr bool trivially_relocatable =
      fits_inline<F> && std::is_trivially_copyable_v<F> &&
      std::is_trivially_destructible_v<F>;

  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& fn) {  // NOLINT(runtime/explicit) — drop-in for lambdas
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      invoke_ = [](void* obj, Args... args) -> R {
        return (*std::launder(reinterpret_cast<D*>(obj)))(
            std::forward<Args>(args)...);
      };
      if constexpr (trivially_relocatable<D>) {
        // Moves of this object memcpy the whole buffer (branch-free), so
        // the bytes past the callable must not be indeterminate. Zeroed
        // once here, never per move.
        if constexpr (sizeof(D) < Capacity) {
          std::memset(storage_ + sizeof(D), 0, Capacity - sizeof(D));
        }
      } else {
        manage_ = [](void* dst, void* src) noexcept {
          D* from = std::launder(reinterpret_cast<D*>(src));
          if (dst != nullptr) ::new (dst) D(std::move(*from));
          from->~D();
        };
      }
    } else {
      // Fallback: one owning pointer in the buffer. Must always fit — this
      // is what guarantees arbitrarily large closures still work.
      static_assert(sizeof(D*) <= Capacity && alignof(D*) <= alignof(
                        std::max_align_t),
                    "InlineFunction heap-fallback pointer must fit inline");
      inline_function_spill_count().fetch_add(1, std::memory_order_relaxed);
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      invoke_ = [](void* obj, Args... args) -> R {
        return (**std::launder(reinterpret_cast<D**>(obj)))(
            std::forward<Args>(args)...);
      };
      manage_ = [](void* dst, void* src) noexcept {
        D** from = std::launder(reinterpret_cast<D**>(src));
        if (dst != nullptr) {
          ::new (dst) D*(*from);  // relocate = copy the owning pointer
        } else {
          delete *from;
        }
        // The pointer itself is trivially destructible; nothing to end.
      };
    }
  }

  InlineFunction(InlineFunction&& other) noexcept
      : invoke_(std::exchange(other.invoke_, nullptr)),
        manage_(std::exchange(other.manage_, nullptr)) {
    if (invoke_ != nullptr) relocate_from(other.storage_);
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      invoke_ = std::exchange(other.invoke_, nullptr);
      manage_ = std::exchange(other.manage_, nullptr);
      if (invoke_ != nullptr) relocate_from(other.storage_);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  R operator()(Args... args) {
    CTESIM_EXPECTS(invoke_ != nullptr);
    return invoke_(storage_, std::forward<Args>(args)...);
  }

  void reset() noexcept {
    if (manage_ != nullptr) manage_(nullptr, storage_);
    manage_ = nullptr;
    invoke_ = nullptr;
  }

 private:
  /// Move the engaged callable out of `src` into our own buffer. The
  /// common (trivially relocatable) case is the inline memcpy; only
  /// callables with real move constructors or destructors pay the
  /// indirect manage_ call.
  void relocate_from(void* src) noexcept {
    if (manage_ != nullptr) {
      manage_(storage_, src);
    } else {
      std::memcpy(storage_, src, Capacity);
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  R (*invoke_)(void*, Args...) = nullptr;
  /// manage_(dst, src): relocate the callable from src into dst (dst !=
  /// nullptr) or destroy it in place (dst == nullptr). noexcept by
  /// construction: only nothrow-movable callables are stored inline.
  /// nullptr while engaged (invoke_ != nullptr) means the callable is
  /// trivially relocatable: moves are a memcpy, destruction a no-op.
  void (*manage_)(void* dst, void* src) noexcept = nullptr;
};

static_assert(sizeof(InlineFunction<void()>) == 64,
              "event callback should be exactly one cache line");

}  // namespace ctesim::util
