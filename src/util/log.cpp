#include "util/log.h"

#include <cstdio>
#include <string>

namespace ctesim::log {

namespace {
Level g_threshold = Level::kWarn;

const char* level_name(Level level) {
  switch (level) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

Level threshold() { return g_threshold; }

void set_threshold(Level level) { g_threshold = level; }

void emit(Level level, std::string_view msg) {
  if (level < g_threshold) return;
  std::string line(msg);
  std::fprintf(stderr, "[ctesim %-5s] %s\n", level_name(level), line.c_str());
}

}  // namespace ctesim::log
