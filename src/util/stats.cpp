#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ctesim {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  CTESIM_EXPECTS(n_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  CTESIM_EXPECTS(n_ > 1);
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  CTESIM_EXPECTS(n_ > 0);
  return min_;
}

double RunningStats::max() const {
  CTESIM_EXPECTS(n_ > 0);
  return max_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  CTESIM_EXPECTS(hi > lo);
  CTESIM_EXPECTS(bins > 0);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(bins()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(bins()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bin) const {
  CTESIM_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  CTESIM_EXPECTS(bin < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(bins());
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

int Histogram::modes(double min_fraction) const {
  if (total_ == 0) return 0;
  const auto threshold =
      static_cast<double>(total_) * min_fraction;
  int modes = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double c = static_cast<double>(counts_[i]);
    if (c < threshold) continue;
    // A mode is a bin strictly greater than its nearest differing neighbours
    // (plateaus count once, at their left edge).
    std::size_t l = i;
    while (l > 0 && counts_[l - 1] == counts_[i]) --l;
    std::size_t r = i;
    while (r + 1 < counts_.size() && counts_[r + 1] == counts_[i]) ++r;
    const bool left_ok = (l == 0) || (counts_[l - 1] < counts_[i]);
    const bool right_ok = (r + 1 == counts_.size()) || (counts_[r + 1] < counts_[i]);
    if (left_ok && right_ok && i == l) ++modes;
  }
  return modes;
}

double percentile(std::vector<double> values, double q) {
  CTESIM_EXPECTS(!values.empty());
  CTESIM_EXPECTS(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double idx = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double p95(std::vector<double> values) {
  return percentile(std::move(values), 0.95);
}

double p99(std::vector<double> values) {
  return percentile(std::move(values), 0.99);
}

}  // namespace ctesim
