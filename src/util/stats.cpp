#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ctesim {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  CTESIM_EXPECTS(n_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  CTESIM_EXPECTS(n_ > 1);
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  CTESIM_EXPECTS(n_ > 0);
  return min_;
}

double RunningStats::max() const {
  CTESIM_EXPECTS(n_ > 0);
  return max_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  CTESIM_EXPECTS(hi > lo);
  CTESIM_EXPECTS(bins > 0);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(bins()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(bins()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bin) const {
  CTESIM_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  CTESIM_EXPECTS(bin < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(bins());
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

int Histogram::modes(double min_fraction) const {
  if (total_ == 0) return 0;
  const auto threshold =
      static_cast<double>(total_) * min_fraction;
  int modes = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double c = static_cast<double>(counts_[i]);
    if (c < threshold) continue;
    // A mode is a bin strictly greater than its nearest differing neighbours
    // (plateaus count once, at their left edge).
    std::size_t l = i;
    while (l > 0 && counts_[l - 1] == counts_[i]) --l;
    std::size_t r = i;
    while (r + 1 < counts_.size() && counts_[r + 1] == counts_[i]) ++r;
    const bool left_ok = (l == 0) || (counts_[l - 1] < counts_[i]);
    const bool right_ok = (r + 1 == counts_.size()) || (counts_[r + 1] < counts_[i]);
    if (left_ok && right_ok && i == l) ++modes;
  }
  return modes;
}

double percentile(std::vector<double> values, double q) {
  CTESIM_EXPECTS(!values.empty());
  CTESIM_EXPECTS(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double idx = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double p95(std::vector<double> values) {
  return percentile(std::move(values), 0.95);
}

double p99(std::vector<double> values) {
  return percentile(std::move(values), 0.99);
}

double student_t_975(std::size_t df) {
  // Two-sided 95% critical values, df 1..30 (standard table); the normal
  // asymptote beyond. df == 0 falls back to df == 1 (widest).
  static constexpr double kTable[30] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return kTable[0];
  if (df <= 30) return kTable[df - 1];
  return 1.96;
}

MeanCi mean_ci95(const std::vector<double>& values) {
  CTESIM_EXPECTS(!values.empty());
  RunningStats stats;
  for (const double v : values) stats.add(v);
  MeanCi ci;
  ci.mean = stats.mean();
  ci.n = stats.count();
  if (ci.n >= 2) {
    ci.half_width = student_t_975(ci.n - 1) * stats.stddev() /
                    std::sqrt(static_cast<double>(ci.n));
  }
  return ci;
}

double weighted_sum_variance(const std::vector<VarianceTerm>& terms) {
  double var = 0.0;
  for (const VarianceTerm& t : terms) {
    if (t.n < 2) continue;
    var += t.weight * t.weight * t.var / static_cast<double>(t.n);
  }
  return var;
}

double welch_satterthwaite_df(const std::vector<VarianceTerm>& terms) {
  // df = (sum_i v_i)^2 / sum_i v_i^2/(n_i - 1), v_i = w_i^2 s_i^2 / n_i.
  double num = 0.0;
  double den = 0.0;
  for (const VarianceTerm& t : terms) {
    if (t.n < 2 || t.var <= 0.0) continue;
    const double v = t.weight * t.weight * t.var / static_cast<double>(t.n);
    num += v;
    den += v * v / static_cast<double>(t.n - 1);
  }
  if (den <= 0.0) return 0.0;
  return num * num / den;
}

}  // namespace ctesim
