#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace ctesim::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at byte " +
                             std::to_string(pos_));
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        Value v;
        v.type = Value::Type::kString;
        v.string = string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        Value v;
        v.type = Value::Type::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        Value v;
        v.type = Value::Type::kBool;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      }
      default:
        return parse_number();
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return v;
  }

  Value array() {
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      const char c = take();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return v;
  }

  unsigned hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        --pos_;
        fail("bad \\u escape");
      }
    }
    return code;
  }

  void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u':
          append_utf8(out, hex4());
          break;
        default:
          --pos_;
          fail("bad escape");
      }
    }
    return out;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("bad number");
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    Value v;
    v.type = Value::Type::kNumber;
    const auto res = std::from_chars(text_.data() + start, text_.data() + pos_,
                                     v.number);
    if (res.ec != std::errc() || res.ptr != text_.data() + pos_) {
      fail("bad number");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value parse(std::string_view text) { return Parser(text).run(); }

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string number(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

}  // namespace ctesim::json
