#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace ctesim {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  CTESIM_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CTESIM_EXPECTS(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller; draw until u1 is nonzero so std::log is safe.
  double u1 = uniform();
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

Rng Rng::split() {
  Rng child(0);
  for (auto& word : child.state_) word = next_u64();
  return child;
}

}  // namespace ctesim
