// Simulated time. Integer picoseconds: fine enough to resolve single FP
// instructions at GHz clocks, wide enough for ~3 months of simulated time,
// and exact — so event ordering (and therefore every result in
// EXPERIMENTS.md) is bit-reproducible across platforms.
//
// Lives in util/ (not core/) because it is the one core concept that the
// layers *below* the engine also speak: trace/ records event times without
// depending on the DES engine, which keeps the subsystem include graph a
// DAG (enforced by ctesim_lint's include-layering pass; core/time.h remains
// as a forwarding shim for the engine-side spelling).
#pragma once

#include <cstdint>

namespace ctesim::sim {

using Time = std::int64_t;  ///< picoseconds

inline constexpr Time kPicosecond = 1;
inline constexpr Time kNanosecond = 1'000;
inline constexpr Time kMicrosecond = 1'000'000;
inline constexpr Time kMillisecond = 1'000'000'000;
inline constexpr Time kSecond = 1'000'000'000'000;

/// Convert seconds (as used by the cost models) to simulated time, rounding
/// to the nearest picosecond. Negative durations are a caller bug and are
/// checked at the scheduling boundary, not here.
constexpr Time from_seconds(double seconds) {
  return static_cast<Time>(seconds * 1e12 + (seconds >= 0 ? 0.5 : -0.5));
}

constexpr double to_seconds(Time t) { return static_cast<double>(t) * 1e-12; }

}  // namespace ctesim::sim
