// Minimal JSON layer shared by the observability exporters and the server
// protocol: a recursive-descent parser (full RFC 8259 value grammar, \uXXXX
// escapes decoded to UTF-8) and a string escaper for composing documents.
// Not a general-purpose library: optimized for clarity and determinism, not
// throughput. Lived in trace/ until the server needed it; trace re-exports
// its old spelling.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ctesim::json {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  ///< preserves order

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }

  /// Member lookup on objects; nullptr when absent (or not an object).
  const Value* find(const std::string& key) const;
};

/// Parse one JSON document (value + optional trailing whitespace). Throws
/// std::runtime_error with a byte offset on malformed input.
Value parse(std::string_view text);

/// Escape `s` for embedding inside a JSON string literal (no quotes added).
std::string escape(const std::string& s);

/// Format a double the way every ctesim JSON producer does ("%.12g"), so
/// identical inputs serialize to identical bytes on every platform.
std::string number(double value);

}  // namespace ctesim::json
