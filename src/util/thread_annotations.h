// Clang thread-safety annotations (-Wthread-safety) for the concurrent
// layers of ctesim: the what-if server, the trace recorder pool and the
// native measurement kernels. The macros expand to clang's capability
// attributes under clang and to nothing elsewhere, so the default GCC
// build is untouched while the CI `thread-safety` job proves, at compile
// time, that every access to a CTESIM_GUARDED_BY member happens with the
// right lock held — for *all* interleavings, not just the ones a TSan run
// happens to execute.
//
// Usage (see docs/STATIC_ANALYSIS.md §6):
//   util::Mutex mutex_;
//   int depth_ CTESIM_GUARDED_BY(mutex_);
//   void drain() CTESIM_EXCLUDES(mutex_);            // takes the lock itself
//   void drain_locked() CTESIM_REQUIRES(mutex_);     // caller holds the lock
//   { util::MutexLock lock(mutex_); ++depth_; }      // scoped acquisition
//
// std::mutex in libstdc++ carries no capability attribute, so the analysis
// cannot see std::lock_guard acquisitions; annotated code therefore uses
// the util::Mutex / util::MutexLock wrappers below (and
// std::condition_variable_any, which waits on any BasicLockable, for
// condition waits).
#pragma once

#include <mutex>

#if defined(__clang__)
#define CTESIM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CTESIM_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// A type that is a lockable capability ("mutex" in diagnostics).
#define CTESIM_CAPABILITY(x) CTESIM_THREAD_ANNOTATION(capability(x))

/// An RAII type that acquires a capability in its constructor and releases
/// it in its destructor (std::lock_guard-shaped types).
#define CTESIM_SCOPED_CAPABILITY CTESIM_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while the named capability is held.
#define CTESIM_GUARDED_BY(x) CTESIM_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded (the pointer itself is not).
#define CTESIM_PT_GUARDED_BY(x) CTESIM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that may only be called while the caller holds the capability.
#define CTESIM_REQUIRES(...) \
  CTESIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that may only be called while the caller does NOT hold the
/// capability (it acquires the lock itself; calling with it held deadlocks).
#define CTESIM_EXCLUDES(...) CTESIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function that acquires / releases the capability and holds it across the
/// call boundary (lock()/unlock()-shaped functions).
#define CTESIM_ACQUIRE(...) \
  CTESIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CTESIM_RELEASE(...) \
  CTESIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `b`.
#define CTESIM_TRY_ACQUIRE(b, ...) \
  CTESIM_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Escape hatch — a function whose body the analysis skips. Every use must
/// carry a comment saying why the access pattern is safe.
#define CTESIM_NO_THREAD_SAFETY_ANALYSIS \
  CTESIM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ctesim::util {

/// std::mutex wrapped as a clang capability so that CTESIM_GUARDED_BY
/// members and CTESIM_REQUIRES functions are actually checkable.
class CTESIM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CTESIM_ACQUIRE() { mutex_.lock(); }
  void unlock() CTESIM_RELEASE() { mutex_.unlock(); }
  bool try_lock() CTESIM_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// Scoped lock for util::Mutex (the CTESIM_SCOPED_CAPABILITY lock guard).
/// Also BasicLockable, so std::condition_variable_any can wait on it, and
/// it supports the unlock()/lock() window the server's worker loop opens
/// around a long-running simulation — the analysis tracks the capability
/// through both.
class CTESIM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) CTESIM_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
    held_ = true;
  }
  ~MutexLock() CTESIM_RELEASE() {
    if (held_) mutex_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily give the lock up (condition waits, slow work).
  void unlock() CTESIM_RELEASE() {
    mutex_.unlock();
    held_ = false;
  }
  /// Re-acquire after unlock().
  void lock() CTESIM_ACQUIRE() {
    mutex_.lock();
    held_ = true;
  }

 private:
  Mutex& mutex_;
  bool held_ = false;
};

}  // namespace ctesim::util
