// Contract checking macros used across ctesim.
//
// Following the C++ Core Guidelines (I.6 "Prefer Expects() for expressing
// preconditions", I.8 Ensures()), we make pre/post-conditions explicit and
// testable: violations throw ctesim::ContractError so unit tests can assert
// on them, instead of aborting the whole test binary.
#pragma once

#include <stdexcept>
#include <string>

namespace ctesim {

/// Thrown when a CTESIM_EXPECTS / CTESIM_ENSURES contract is violated.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   const char* file, int line);
}  // namespace detail

}  // namespace ctesim

/// Precondition check: document and enforce what a function requires.
#define CTESIM_EXPECTS(expr)                                              \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::ctesim::detail::contract_failure("Precondition", #expr, __FILE__, \
                                         __LINE__);                       \
    }                                                                     \
  } while (false)

/// Postcondition check: document and enforce what a function guarantees.
#define CTESIM_ENSURES(expr)                                               \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::ctesim::detail::contract_failure("Postcondition", #expr, __FILE__, \
                                         __LINE__);                        \
    }                                                                      \
  } while (false)
