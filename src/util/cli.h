// Tiny command-line flag parser for the bench harnesses and examples.
//
// Supports --name=value and --name value forms, plus bare --flag for bools.
// Unknown flags are an error (catches typos in sweep scripts).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ctesim {

class Cli {
 public:
  Cli(std::string program, std::string description);

  /// Register options; `help` is shown by print_help(). Returns *this so
  /// registrations chain.
  Cli& flag(const std::string& name, bool* value, const std::string& help);
  Cli& option(const std::string& name, std::int64_t* value,
              const std::string& help);
  Cli& option(const std::string& name, double* value, const std::string& help);
  Cli& option(const std::string& name, std::string* value,
              const std::string& help);

  /// Parse argv. Returns false (after printing a message) on error or when
  /// --help was requested; the caller should exit(0) in that case.
  bool parse(int argc, const char* const* argv);

  void print_help() const;

 private:
  enum class Kind { kBool, kInt, kDouble, kString };
  struct Opt {
    Kind kind;
    void* target;
    std::string help;
    std::string default_repr;
  };

  Cli& add(const std::string& name, Kind kind, void* target,
           const std::string& help, std::string default_repr);
  bool assign(const std::string& name, const std::string& value);

  std::string program_;
  std::string description_;
  std::map<std::string, Opt> opts_;
  std::vector<std::string> order_;
};

}  // namespace ctesim
