// Deterministic pseudo-random number generation for reproducible simulations.
//
// xoshiro256** (Blackman & Vigna) — fast, high quality, and — unlike
// std::mt19937 + std::uniform_*_distribution — its outputs are identical
// across standard library implementations, which matters for a simulator
// whose results we record in EXPERIMENTS.md.
#pragma once

#include <cstdint>

#include "util/check.h"

namespace ctesim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialise the state from a 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Split off an independent child stream (for per-actor determinism that
  /// does not depend on actor scheduling order).
  Rng split();

 private:
  std::uint64_t state_[4];
};

}  // namespace ctesim
