#include "util/hash.h"

#include <cstdio>

namespace ctesim {

std::string hash_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace ctesim
