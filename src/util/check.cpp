#include "util/check.h"

#include <sstream>

namespace ctesim::detail {

void contract_failure(const char* kind, const char* expr, const char* file,
                      int line) {
  std::ostringstream os;
  os << kind << " violated: (" << expr << ") at " << file << ":" << line;
  throw ContractError(os.str());
}

}  // namespace ctesim::detail
