// Minimal leveled logger. Single-threaded by design: the simulator runs all
// actors on one host thread (discrete-event model), so no locking is needed.
#pragma once

#include <sstream>
#include <string_view>

namespace ctesim::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded.
Level threshold();
void set_threshold(Level level);

/// Emit one log line (used by the macros below).
void emit(Level level, std::string_view msg);

namespace detail {
class LineBuilder {
 public:
  explicit LineBuilder(Level level) : level_(level) {}
  ~LineBuilder() { emit(level_, os_.str()); }
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace ctesim::log

#define CTESIM_LOG(level)                                  \
  if (::ctesim::log::threshold() <= ::ctesim::log::level)  \
  ::ctesim::log::detail::LineBuilder(::ctesim::log::level)

#define CTESIM_DEBUG CTESIM_LOG(Level::kDebug)
#define CTESIM_INFO CTESIM_LOG(Level::kInfo)
#define CTESIM_WARN CTESIM_LOG(Level::kWarn)
#define CTESIM_ERROR CTESIM_LOG(Level::kError)
