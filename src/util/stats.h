// Streaming statistics and histograms used by the network-distribution
// figures (Fig. 4, Fig. 5) and by variability checks in the tests.
#pragma once

#include <cstddef>
#include <vector>

namespace ctesim {

/// Welford streaming mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); values outside clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Number of local maxima with at least `min_fraction` of the total mass —
  /// used by tests to assert the bimodality the paper observes in Fig. 5.
  int modes(double min_fraction) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Exact percentile of a sample (q in [0,1], linear interpolation).
double percentile(std::vector<double> values, double q);

/// Convenience tail percentiles, as reported by the batch metrics.
double p95(std::vector<double> values);
double p99(std::vector<double> values);

}  // namespace ctesim
