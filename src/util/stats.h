// Streaming statistics and histograms used by the network-distribution
// figures (Fig. 4, Fig. 5) and by variability checks in the tests.
#pragma once

#include <cstddef>
#include <vector>

namespace ctesim {

/// Welford streaming mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); values outside clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Number of local maxima with at least `min_fraction` of the total mass —
  /// used by tests to assert the bimodality the paper observes in Fig. 5.
  int modes(double min_fraction) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Exact percentile of a sample (q in [0,1], linear interpolation).
double percentile(std::vector<double> values, double q);

/// Convenience tail percentiles, as reported by the batch metrics.
double p95(std::vector<double> values);
double p99(std::vector<double> values);

// --- confidence-interval helpers (used by src/sampling) --------------------

/// Two-sided 95% Student-t critical value for `df` degrees of freedom
/// (t_{0.975,df}). Exact table for df <= 30, the z asymptote 1.96 beyond.
/// df == 0 (a single sample carries no variance information) returns the
/// df == 1 value, the widest the table knows.
double student_t_975(std::size_t df);

/// A mean with its 95% confidence half-width.
struct MeanCi {
  double mean = 0.0;
  double half_width = 0.0;  ///< t_{0.975,n-1} * s / sqrt(n); 0 when n < 2
  std::size_t n = 0;
};

/// Sample mean and Student-t 95% CI half-width. Requires n >= 1.
MeanCi mean_ci95(const std::vector<double>& values);

/// Welch-Satterthwaite effective degrees of freedom for a weighted sum of
/// independent sample means: sum_i w_i * mean_i with per-term sample
/// variance `var` over `n` samples. Terms with n < 2 contribute no
/// variance (and no freedom). Returns 0 when every term is degenerate.
struct VarianceTerm {
  double weight = 1.0;  ///< w_i (applied to the mean; variance gets w_i^2)
  double var = 0.0;     ///< sample variance s_i^2 (n-1 denominator)
  std::size_t n = 0;    ///< samples behind mean_i
};
double welch_satterthwaite_df(const std::vector<VarianceTerm>& terms);

/// Variance of the weighted sum itself: sum_i w_i^2 * var_i / n_i.
double weighted_sum_variance(const std::vector<VarianceTerm>& terms);

}  // namespace ctesim
