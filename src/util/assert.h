// Internal invariant checks (message + expression), distinct from the
// always-on CTESIM_EXPECTS/CTESIM_ENSURES contracts in util/check.h:
// contracts guard the public API surface against caller mistakes; these
// macros guard *internal* invariants (engine time monotonicity, allocator
// bookkeeping) that are too hot or too internal to pay for in release.
//
// CTESIM_ASSERT(expr, msg)  — enabled whenever checks are enabled.
// CTESIM_DCHECK(expr, msg)  — same gate; spelled differently to mark
//                             checks cheap enough to consider always-on
//                             later. Both compile to nothing (expression
//                             unevaluated) when checks are off.
//
// Checks are ON in Debug builds (no NDEBUG) and whenever the build defines
// CTESIM_ENABLE_CHECKS — the CMake option CTESIM_CHECKS=ON does that, and
// CTESIM_SANITIZE presets turn it on automatically. Violations throw
// ctesim::ContractError (like the contract macros) so tests can assert on
// them without killing the test binary.
#pragma once

#include <sstream>
#include <string>

#include "util/check.h"

#if defined(CTESIM_ENABLE_CHECKS) || !defined(NDEBUG)
#define CTESIM_CHECKS_ENABLED 1
#else
#define CTESIM_CHECKS_ENABLED 0
#endif

namespace ctesim::detail {

[[noreturn]] inline void invariant_failure(const char* kind, const char* expr,
                                           const std::string& message,
                                           const char* file, int line) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " — " << message << " (" << file << ":"
     << line << ")";
  throw ContractError(os.str());
}

}  // namespace ctesim::detail

#if CTESIM_CHECKS_ENABLED

#define CTESIM_ASSERT(expr, msg)                                      \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::ctesim::detail::invariant_failure("Invariant", #expr, (msg),  \
                                          __FILE__, __LINE__);        \
    }                                                                 \
  } while (false)

#define CTESIM_DCHECK(expr, msg)                                      \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::ctesim::detail::invariant_failure("Debug check", #expr, (msg), \
                                          __FILE__, __LINE__);        \
    }                                                                 \
  } while (false)

#else  // checks compiled out: expression and message are not evaluated.

#define CTESIM_ASSERT(expr, msg) \
  do {                           \
  } while (false)
#define CTESIM_DCHECK(expr, msg) \
  do {                           \
  } while (false)

#endif  // CTESIM_CHECKS_ENABLED
