// Human-readable formatting and parsing of HPC quantities (bytes, bandwidth,
// FLOP rates, durations). Used by the reporting layer and the bench harnesses
// so every figure prints units the same way the paper does.
#pragma once

#include <cstdint>
#include <string>

namespace ctesim::units {

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;

/// "256 B", "1.0 KiB", "4.0 MiB" — power-of-two units (message sizes).
std::string format_bytes_binary(std::uint64_t bytes);

/// "1.5 GB", "256.0 MB" — decimal units (memory capacities as vendors quote).
std::string format_bytes_decimal(double bytes);

/// "862.6 GB/s" style bandwidth (decimal GB as in STREAM and the paper).
std::string format_bandwidth(double bytes_per_second);

/// "70.40 GFlop/s", "2.1 TFlop/s".
std::string format_flops(double flops_per_second);

/// "12.5 us", "3.2 ms", "41.0 s".
std::string format_seconds(double seconds);

/// Parse sizes like "256", "4k", "1M", "2G" (binary multipliers) into bytes.
/// Returns false on malformed input.
bool parse_size(const std::string& text, std::uint64_t* out_bytes);

}  // namespace ctesim::units
