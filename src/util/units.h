// Physical quantities for the model math, plus human-readable formatting
// and parsing of HPC quantities (bytes, bandwidth, FLOP rates, durations).
//
// The strong types (Seconds, Bytes, Flops, BytesPerSec, FlopsPerSec) make
// unit mix-ups — GB/s where B/s was meant, microseconds fed into a
// seconds slot — compile errors instead of silently wrong figures. They
// wrap a double, cost nothing at runtime, and only convert to/from raw
// doubles explicitly (construction `Seconds{x}` / extraction `.value()`).
// Cross-dimension arithmetic yields the correct derived type:
//
//   Bytes / BytesPerSec -> Seconds        Bytes / Seconds -> BytesPerSec
//   Flops / FlopsPerSec -> Seconds        Flops / Seconds -> FlopsPerSec
//   BytesPerSec * Seconds -> Bytes        FlopsPerSec * Seconds -> Flops
//   Joules / Seconds -> Watts             Watts * Seconds -> Joules
//   Joules / Watts -> Seconds
//
// Same-dimension ratios collapse to a plain double (efficiencies,
// speedups). Adding quantities of different dimensions does not compile.
//
// The formatting helpers are used by the reporting layer and the bench
// harnesses so every figure prints units the same way the paper does.
#pragma once

#include <cstdint>
#include <string>

namespace ctesim::units {

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;

// ------------------------------------------------------- strong quantities

/// A dimension-tagged double. `Tag` distinguishes incompatible dimensions;
/// all arithmetic that stays within one dimension lives here.
template <class Tag>
class Quantity {
 public:
  constexpr Quantity() = default;
  explicit constexpr Quantity(double value) : value_(value) {}

  /// The raw magnitude in the dimension's base unit (s, B, flop, B/s,
  /// flop/s). The only way out of the type system — keep extractions at
  /// I/O and formatting boundaries.
  constexpr double value() const { return value_; }

  constexpr Quantity operator-() const { return Quantity{-value_}; }
  constexpr Quantity& operator+=(Quantity other) {
    value_ += other.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity other) {
    value_ -= other.value_;
    return *this;
  }
  constexpr Quantity& operator*=(double k) {
    value_ *= k;
    return *this;
  }
  constexpr Quantity& operator/=(double k) {
    value_ /= k;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{a.value_ + b.value_};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{a.value_ - b.value_};
  }
  friend constexpr Quantity operator*(Quantity a, double k) {
    return Quantity{a.value_ * k};
  }
  friend constexpr Quantity operator*(double k, Quantity a) {
    return Quantity{k * a.value_};
  }
  friend constexpr Quantity operator/(Quantity a, double k) {
    return Quantity{a.value_ / k};
  }
  /// Same-dimension ratio: an efficiency / speedup, dimensionless.
  friend constexpr double operator/(Quantity a, Quantity b) {
    return a.value_ / b.value_;
  }

  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

 private:
  double value_ = 0.0;
};

struct SecondsTag {};
struct BytesTag {};
struct FlopsTag {};
struct BytesPerSecTag {};
struct FlopsPerSecTag {};
struct WattsTag {};
struct JoulesTag {};

using Seconds = Quantity<SecondsTag>;          ///< durations, base unit s
using Bytes = Quantity<BytesTag>;              ///< data volumes, base unit B
using Flops = Quantity<FlopsTag>;              ///< FP work, base unit flop
using BytesPerSec = Quantity<BytesPerSecTag>;  ///< bandwidth
using FlopsPerSec = Quantity<FlopsPerSecTag>;  ///< compute rate
using Watts = Quantity<WattsTag>;              ///< power draw, base unit W
using Joules = Quantity<JoulesTag>;            ///< energy, base unit J

// Cross-dimension arithmetic — each combination names its derived type.
constexpr Seconds operator/(Bytes n, BytesPerSec rate) {
  return Seconds{n.value() / rate.value()};
}
constexpr Seconds operator/(Flops n, FlopsPerSec rate) {
  return Seconds{n.value() / rate.value()};
}
constexpr BytesPerSec operator/(Bytes n, Seconds t) {
  return BytesPerSec{n.value() / t.value()};
}
constexpr FlopsPerSec operator/(Flops n, Seconds t) {
  return FlopsPerSec{n.value() / t.value()};
}
constexpr Bytes operator*(BytesPerSec rate, Seconds t) {
  return Bytes{rate.value() * t.value()};
}
constexpr Bytes operator*(Seconds t, BytesPerSec rate) { return rate * t; }
constexpr Flops operator*(FlopsPerSec rate, Seconds t) {
  return Flops{rate.value() * t.value()};
}
constexpr Flops operator*(Seconds t, FlopsPerSec rate) { return rate * t; }
constexpr Watts operator/(Joules e, Seconds t) {
  return Watts{e.value() / t.value()};
}
constexpr Joules operator*(Watts p, Seconds t) {
  return Joules{p.value() * t.value()};
}
constexpr Joules operator*(Seconds t, Watts p) { return p * t; }
constexpr Seconds operator/(Joules e, Watts p) {
  return Seconds{e.value() / p.value()};
}

// Scaled constructors for the units the paper (and the machine files)
// quote quantities in.
constexpr Seconds microseconds(double us) { return Seconds{us * 1e-6}; }
constexpr Seconds milliseconds(double ms) { return Seconds{ms * 1e-3}; }
constexpr Bytes gigabytes(double gb) { return Bytes{gb * kGB}; }
constexpr Bytes gibibytes(double gib) { return Bytes{gib * kGiB}; }
constexpr BytesPerSec gigabytes_per_sec(double gbs) {
  return BytesPerSec{gbs * kGB};
}
constexpr FlopsPerSec gigaflops(double gf) { return FlopsPerSec{gf * 1e9}; }

// Scaled extractors for reporting.
constexpr double to_us(Seconds s) { return s.value() * 1e6; }
constexpr double to_gbs(BytesPerSec bw) { return bw.value() / kGB; }
constexpr double to_gflops(FlopsPerSec rate) { return rate.value() / 1e9; }

// ------------------------------------------------------------- formatting

/// "256 B", "1.0 KiB", "4.0 MiB" — power-of-two units (message sizes).
std::string format_bytes_binary(std::uint64_t bytes);

/// "1.5 GB", "256.0 MB" — decimal units (memory capacities as vendors quote).
std::string format_bytes_decimal(double bytes);

/// "862.6 GB/s" style bandwidth (decimal GB as in STREAM and the paper).
std::string format_bandwidth(double bytes_per_second);
std::string format_bandwidth(BytesPerSec bw);

/// "70.40 GFlop/s", "2.1 TFlop/s".
std::string format_flops(double flops_per_second);
std::string format_flops(FlopsPerSec rate);

/// "12.5 us", "3.2 ms", "41.0 s".
std::string format_seconds(double seconds);
std::string format_seconds(Seconds seconds);

/// "850.0 W", "23.4 kW", "1.2 MW".
std::string format_power(double watts);
std::string format_power(Watts power);

/// "512.0 J", "3.6 MJ", "1.1 GJ".
std::string format_energy(double joules);
std::string format_energy(Joules energy);

/// Parse sizes like "256", "4k", "1M", "2G" (binary multipliers) into bytes.
/// Returns false on malformed input.
bool parse_size(const std::string& text, std::uint64_t* out_bytes);

}  // namespace ctesim::units
