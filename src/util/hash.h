// Stable 64-bit content hashing (FNV-1a) for cache keys. Unlike
// std::hash, the result is specified: identical bytes hash identically on
// every platform and standard library, so server cache keys — and the
// config/workload hashes echoed in replies — are reproducible everywhere.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ctesim {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// FNV-1a over a byte string.
constexpr std::uint64_t hash64(std::string_view bytes,
                               std::uint64_t seed = kFnvOffsetBasis) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Fold a 64-bit value into a running hash (for composite keys).
constexpr std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

/// Fixed-width lowercase hex spelling (16 chars), used in protocol replies.
std::string hash_hex(std::uint64_t h);

}  // namespace ctesim
