#include "util/units.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace ctesim::units {

namespace {
std::string format_scaled(double value, const char* const* suffixes,
                          int nsuffixes, double base) {
  int idx = 0;
  double v = value;
  while (std::fabs(v) >= base && idx + 1 < nsuffixes) {
    v /= base;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, suffixes[idx]);
  return buf;
}
}  // namespace

std::string format_bytes_binary(std::uint64_t bytes) {
  static const char* const kSuffixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  if (bytes < 1024) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
    return buf;
  }
  return format_scaled(static_cast<double>(bytes), kSuffixes, 5, 1024.0);
}

std::string format_bytes_decimal(double bytes) {
  static const char* const kSuffixes[] = {"B", "kB", "MB", "GB", "TB"};
  return format_scaled(bytes, kSuffixes, 5, 1000.0);
}

std::string format_bandwidth(double bytes_per_second) {
  static const char* const kSuffixes[] = {"B/s", "kB/s", "MB/s", "GB/s",
                                          "TB/s"};
  return format_scaled(bytes_per_second, kSuffixes, 5, 1000.0);
}

std::string format_flops(double flops_per_second) {
  static const char* const kSuffixes[] = {"Flop/s", "KFlop/s", "MFlop/s",
                                          "GFlop/s", "TFlop/s", "PFlop/s"};
  return format_scaled(flops_per_second, kSuffixes, 6, 1000.0);
}

std::string format_bandwidth(BytesPerSec bw) {
  return format_bandwidth(bw.value());
}

std::string format_flops(FlopsPerSec rate) {
  return format_flops(rate.value());
}

std::string format_seconds(Seconds seconds) {
  return format_seconds(seconds.value());
}

std::string format_power(double watts) {
  static const char* const kSuffixes[] = {"W", "kW", "MW", "GW"};
  return format_scaled(watts, kSuffixes, 4, 1000.0);
}

std::string format_power(Watts power) { return format_power(power.value()); }

std::string format_energy(double joules) {
  static const char* const kSuffixes[] = {"J", "kJ", "MJ", "GJ", "TJ"};
  return format_scaled(joules, kSuffixes, 5, 1000.0);
}

std::string format_energy(Joules energy) {
  return format_energy(energy.value());
}

std::string format_seconds(double seconds) {
  char buf[64];
  const double abs = std::fabs(seconds);
  if (abs >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (abs >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  } else if (abs >= 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.3f us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
  }
  return buf;
}

bool parse_size(const std::string& text, std::uint64_t* out_bytes) {
  CTESIM_EXPECTS(out_bytes != nullptr);
  if (text.empty()) return false;
  std::size_t pos = 0;
  std::uint64_t value = 0;
  bool any_digit = false;
  while (pos < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[pos]))) {
    value = value * 10 + static_cast<std::uint64_t>(text[pos] - '0');
    any_digit = true;
    ++pos;
  }
  if (!any_digit) return false;
  std::uint64_t mult = 1;
  if (pos < text.size()) {
    switch (std::tolower(static_cast<unsigned char>(text[pos]))) {
      case 'k':
        mult = 1024ULL;
        break;
      case 'm':
        mult = 1024ULL * 1024;
        break;
      case 'g':
        mult = 1024ULL * 1024 * 1024;
        break;
      default:
        return false;
    }
    ++pos;
    if (pos < text.size() &&
        std::tolower(static_cast<unsigned char>(text[pos])) == 'b') {
      ++pos;
    }
    if (pos != text.size()) return false;
  }
  *out_bytes = value * mult;
  return true;
}

}  // namespace ctesim::units
