#include "util/csv.h"

#include <cstdio>
#include <stdexcept>

#include "util/check.h"

namespace ctesim {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  CTESIM_EXPECTS(!header.empty());
  write_fields(header);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  CTESIM_EXPECTS(fields.size() == columns_);
  write_fields(fields);
}

void CsvWriter::row(const std::vector<double>& fields) {
  std::vector<std::string> text;
  text.reserve(fields.size());
  for (double v : fields) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    text.emplace_back(buf);
  }
  row(text);
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_fields(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

}  // namespace ctesim
