#include "util/csv.h"

#include <cstdio>
#include <stdexcept>

#include "util/check.h"

namespace ctesim {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  CTESIM_EXPECTS(!header.empty());
  write_fields(header);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  CTESIM_EXPECTS(fields.size() == columns_);
  write_fields(fields);
}

void CsvWriter::row(const std::vector<double>& fields) {
  std::vector<std::string> text;
  text.reserve(fields.size());
  for (double v : fields) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    text.emplace_back(buf);
  }
  row(text);
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_fields(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

CsvReader::CsvReader(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("CsvReader: cannot open " + path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    auto fields = parse_line(line);
    if (header_.empty()) {
      header_ = std::move(fields);
      continue;
    }
    if (fields.size() != header_.size()) {
      throw std::runtime_error("CsvReader: ragged row in " + path);
    }
    rows_.push_back(std::move(fields));
  }
  if (header_.empty()) {
    throw std::runtime_error("CsvReader: no header row in " + path);
  }
}

bool CsvReader::has_column(const std::string& column) const {
  for (const auto& h : header_) {
    if (h == column) return true;
  }
  return false;
}

const std::string& CsvReader::cell(std::size_t row, std::size_t col) const {
  CTESIM_EXPECTS(row < rows_.size() && col < header_.size());
  return rows_[row][col];
}

const std::string& CsvReader::cell(std::size_t row,
                                   const std::string& column) const {
  return cell(row, column_index(column));
}

double CsvReader::number(std::size_t row, const std::string& column) const {
  const std::string& text = cell(row, column);
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &consumed);
  } catch (const std::exception&) {
    throw std::runtime_error("CsvReader: non-numeric cell '" + text +
                             "' in column " + column);
  }
  if (consumed != text.size()) {
    throw std::runtime_error("CsvReader: non-numeric cell '" + text +
                             "' in column " + column);
  }
  return value;
}

std::vector<std::string> CsvReader::parse_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field += c;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

std::size_t CsvReader::column_index(const std::string& column) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == column) return i;
  }
  throw std::runtime_error("CsvReader: no column named " + column);
}

}  // namespace ctesim
